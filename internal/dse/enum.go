package dse

import (
	"fmt"
	"math/rand"
	"sort"
)

// Partition enumeration. Partitions are unit-count vectors: part[0:n]
// are PE units per sub-accelerator, part[n:2n] are BW units; each
// entry >= 1, sums equal the unit totals.
//
// The enumeration is streamed: spaceSize counts the partitions
// combinatorially up front (so workers and result arrays can be
// sized), and streamPartitions yields them one by one in the same
// deterministic order the original eager enumerate produced — PE
// composition outer, BW composition inner, each composition in
// lexicographic prefix order. The enumeration itself holds
// O(workers × chunk) partitions in flight instead of O(|space|);
// what IS retained per worker — partition HDAs and bound memos that
// keep re-sweeps warm — is capped by maxWorkerMemo (sweeper.go).

// compCount returns the number of ordered compositions of `total`
// into n parts, each >= 1: C(total-1, n-1).
func compCount(total, n int) int {
	if n < 1 || total < n {
		return 0
	}
	c := 1
	for i := 1; i < n; i++ {
		c = c * (total - i) / i // exact: product of consecutive terms
	}
	return c
}

// pow2CompCount returns the number of ordered compositions of `total`
// into n parts that are all powers of two.
func pow2CompCount(total, n int) int {
	if n == 0 {
		if total == 0 {
			return 1
		}
		return 0
	}
	if total < n {
		return 0
	}
	count := 0
	for v := 1; v <= total-(n-1); v <<= 1 {
		count += pow2CompCount(total-v, n-1)
	}
	return count
}

// compIter streams the ordered compositions of `total` into n parts
// (each >= 1) in the recursive enumeration's lexicographic prefix
// order. The yielded slice is the iterator's own state: callers must
// copy it before advancing.
type compIter struct {
	total, n int
	cur      []int
	done     bool
}

func newCompIter(total, n int) *compIter {
	it := &compIter{total: total, n: n, cur: make([]int, n)}
	it.reset()
	return it
}

// reset rewinds the iterator to the first composition.
func (it *compIter) reset() {
	it.done = it.total < it.n || it.n < 1
	if it.done {
		return
	}
	for i := 0; i < it.n-1; i++ {
		it.cur[i] = 1
	}
	it.cur[it.n-1] = it.total - (it.n - 1)
}

// next advances to the following composition, reporting false when the
// enumeration is exhausted. The first composition is available
// immediately after reset; call next only after consuming cur.
func (it *compIter) next() bool {
	if it.done {
		return false
	}
	// Carry: find the rightmost prefix position whose increment leaves
	// at least 1 unit for every later part, bump it, and reset the
	// suffix to its minimal configuration.
	for p := it.n - 2; p >= 0; p-- {
		// Units consumed by cur[0..p] after the increment.
		used := 1
		for i := 0; i <= p; i++ {
			used += it.cur[i]
		}
		// The n-1-p parts after p each need >= 1 unit.
		if used+(it.n-1-p) <= it.total {
			it.cur[p]++
			for i := p + 1; i < it.n-1; i++ {
				it.cur[i] = 1
			}
			rest := it.total
			for i := 0; i < it.n-1; i++ {
				rest -= it.cur[i]
			}
			it.cur[it.n-1] = rest
			return true
		}
	}
	it.done = true
	return false
}

// allPow2 reports whether every entry of the composition is a power of
// two.
func allPow2(c []int) bool {
	for _, v := range c {
		if v&(v-1) != 0 {
			return false
		}
	}
	return true
}

// spaceSize returns the number of partitions the (space, options) pair
// enumerates, with the Binary strategy's named emptiness errors.
func spaceSize(sp Space, opts Options) (int, error) {
	n := len(sp.Styles)
	switch opts.Strategy {
	case Binary:
		pe := pow2CompCount(sp.PEUnits, n)
		if pe == 0 {
			return 0, binaryEmptyErr("PE", sp.PEUnits, n)
		}
		bw := pow2CompCount(sp.BWUnits, n)
		if bw == 0 {
			return 0, binaryEmptyErr("bandwidth", sp.BWUnits, n)
		}
		return pe * bw, nil
	case Random:
		k := opts.Samples
		if k <= 0 {
			k = 32
		}
		return k, nil
	default: // Exhaustive
		return compCount(sp.PEUnits, n) * compCount(sp.BWUnits, n), nil
	}
}

// streamPartitions yields every partition of the space in
// deterministic enumeration order: yield receives the running index
// and a vector that is reused between calls (copy before keeping).
// Returning false from yield stops the stream early.
func streamPartitions(sp Space, opts Options, yield func(idx int, part []int) bool) {
	n := len(sp.Styles)
	if opts.Strategy == Random {
		k := opts.Samples
		if k <= 0 {
			k = 32
		}
		for i, part := range randomPartitions(sp, k, opts.Seed) {
			if !yield(i, part) {
				return
			}
		}
		return
	}

	pow2Only := opts.Strategy == Binary
	part := make([]int, 2*n)
	idx := 0
	pe := newCompIter(sp.PEUnits, n)
	for ok := !pe.done; ok; ok = pe.next() {
		if pow2Only && !allPow2(pe.cur) {
			continue
		}
		copy(part, pe.cur)
		bw := newCompIter(sp.BWUnits, n)
		for bok := !bw.done; bok; bok = bw.next() {
			if pow2Only && !allPow2(bw.cur) {
				continue
			}
			copy(part[n:], bw.cur)
			if !yield(idx, part) {
				return
			}
			idx++
		}
	}
}

// enumerate materializes the whole partition stream. Only tests and
// reference checks use it — the search path streams through
// streamPartitions without ever holding the space in memory.
func enumerate(sp Space, opts Options) ([][]int, error) {
	if _, err := spaceSize(sp, opts); err != nil {
		return nil, err
	}
	var out [][]int
	streamPartitions(sp, opts, func(_ int, part []int) bool {
		out = append(out, append([]int(nil), part...))
		return true
	})
	return out, nil
}

// binaryEmptyErr names the Binary pow2 constraint when it filters a
// resource's composition space to nothing. The suggested granularity
// is the smallest power of two >= units: any power-of-two total >= n
// splits greedily into n power-of-two parts (Space.Validate already
// guarantees units >= n).
func binaryEmptyErr(resource string, units, n int) error {
	pow2 := 1
	for pow2 < units {
		pow2 <<= 1
	}
	return fmt.Errorf("dse: Binary strategy requires every sub-accelerator's share to be a power of two, "+
		"but %d %s units cannot be split into %d power-of-two parts; "+
		"use a pow2-friendly granularity (e.g. %d units) or the Exhaustive/Random strategy",
		units, resource, n, pow2)
}

// compositions enumerates all ways to write `total` as an ordered sum
// of n parts, each >= 1. It is the eager reference implementation the
// streaming compIter is tested against (and what randomPartitions'
// stars-and-bars sampling conceptually draws from); the search path
// itself never materializes composition sets.
func compositions(total, n int) [][]int {
	if n == 1 {
		return [][]int{{total}}
	}
	var out [][]int
	cur := make([]int, n)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == n-1 {
			cur[pos] = left
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 1; v <= left-(n-1-pos); v++ {
			cur[pos] = v
			rec(pos+1, left-v)
		}
	}
	rec(0, total)
	return out
}

// filterPow2 keeps compositions whose entries are all powers of two
// (reference counterpart of the streaming pow2 filter).
func filterPow2(comps [][]int) [][]int {
	var out [][]int
	for _, c := range comps {
		if allPow2(c) {
			out = append(out, c)
		}
	}
	return out
}

// randomPartitions samples k unit-count vectors uniformly from the
// composition space (with replacement; deterministic for a seed).
func randomPartitions(sp Space, k int, seed int64) [][]int {
	n := len(sp.Styles)
	r := rand.New(rand.NewSource(seed))
	sample := func(total int) []int {
		// Stars-and-bars: choose n-1 distinct cut points.
		cuts := r.Perm(total - 1)[: n-1 : n-1]
		sort.Ints(cuts)
		parts := make([]int, n)
		prev := 0
		for i, c := range cuts {
			parts[i] = c + 1 - prev
			prev = c + 1
		}
		parts[n-1] = total - prev
		return parts
	}
	out := make([][]int, k)
	for i := 0; i < k; i++ {
		part := make([]int, 2*n)
		copy(part, sample(sp.PEUnits))
		copy(part[n:], sample(sp.BWUnits))
		out[i] = part
	}
	return out
}
