package dse

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
)

// TestCompIterMatchesRecursive: the streaming composition iterator
// must reproduce the eager recursive enumeration exactly — same
// compositions, same order — for every shape the seed spaces use.
func TestCompIterMatchesRecursive(t *testing.T) {
	cases := [][2]int{{8, 2}, {16, 2}, {8, 3}, {16, 3}, {4, 1}, {3, 3}, {12, 4}}
	for _, c := range cases {
		total, n := c[0], c[1]
		want := compositions(total, n)
		it := newCompIter(total, n)
		var got [][]int
		for ok := !it.done; ok; ok = it.next() {
			got = append(got, append([]int(nil), it.cur...))
		}
		if len(got) != len(want) {
			t.Fatalf("compIter(%d,%d): %d compositions, want %d", total, n, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("compIter(%d,%d)[%d] = %v, want %v", total, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSpaceSizeMatchesStream: the combinatorial count must equal the
// number of partitions the stream yields, for every strategy.
func TestSpaceSizeMatchesStream(t *testing.T) {
	spaces := []Space{
		edgeSpace(),
		{Class: accel.Edge, Styles: []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao, dataflow.Eyeriss},
			PEUnits: 8, BWUnits: 4},
		{Class: accel.Mobile, Styles: []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
			PEUnits: 16, BWUnits: 8},
	}
	for _, sp := range spaces {
		sp = sp.withDefaults()
		for _, strat := range []Strategy{Exhaustive, Binary, Random} {
			opts := DefaultOptions()
			opts.Strategy = strat
			opts.Samples = 9
			want, err := spaceSize(sp, opts)
			if err != nil {
				t.Fatalf("%v/%v: %v", sp.Styles, strat, err)
			}
			got := 0
			lastIdx := -1
			streamPartitions(sp, opts, func(idx int, part []int) bool {
				if idx != lastIdx+1 {
					t.Fatalf("%v/%v: stream index %d after %d", sp.Styles, strat, idx, lastIdx)
				}
				lastIdx = idx
				checkComposition(t, sp, part)
				got++
				return true
			})
			if got != want {
				t.Errorf("%v/%v: spaceSize %d, stream yielded %d", sp.Styles, strat, want, got)
			}
		}
	}
}

// TestSpaceSizeBinaryEmpty: the Binary count path must surface the
// named pow2 error, same as the old filter did.
func TestSpaceSizeBinaryEmpty(t *testing.T) {
	sp := edgeSpace()
	sp.BWUnits = 7
	opts := DefaultOptions()
	opts.Strategy = Binary
	if _, err := spaceSize(sp.withDefaults(), opts); err == nil {
		t.Fatal("7 BW units into 2 pow2 parts accepted")
	}
}

// TestPow2CompCount pins the DP against the filtered eager reference.
func TestPow2CompCount(t *testing.T) {
	for _, c := range [][2]int{{8, 2}, {16, 2}, {8, 3}, {7, 2}, {12, 3}} {
		total, n := c[0], c[1]
		want := len(filterPow2(compositions(total, n)))
		if got := pow2CompCount(total, n); got != want {
			t.Errorf("pow2CompCount(%d,%d) = %d, want %d", total, n, got, want)
		}
	}
}

// TestStreamEarlyStop: returning false from yield stops the stream.
func TestStreamEarlyStop(t *testing.T) {
	sp := edgeSpace().withDefaults()
	n := 0
	streamPartitions(sp, DefaultOptions(), func(int, []int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("stream yielded %d partitions after early stop, want 3", n)
	}
}
