package core

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dse"
	"repro/internal/energy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	bad := energy.Default28nm()
	bad.MAC = 0
	if _, err := New(bad, sched.DefaultOptions()); err == nil {
		t.Error("invalid energy table accepted")
	}
	opts := sched.DefaultOptions()
	opts.LoadBalanceFactor = 0
	if _, err := New(energy.Default28nm(), opts); err == nil {
		t.Error("invalid sched options accepted")
	}
	h := Default()
	if h.Cache() == nil {
		t.Error("cache not initialized")
	}
	if h.SchedOptions().LoadBalanceFactor != sched.DefaultOptions().LoadBalanceFactor {
		t.Error("options not stored")
	}
}

func TestCoDesignFindsCloudMinimum(t *testing.T) {
	h := Default()
	w := workload.MustNew("cd", []workload.Entry{
		{Model: "mobilenetv1", Batches: 2},
		{Model: "brq-handpose", Batches: 1},
	})
	d, err := h.CoDesign(accel.Edge,
		[]dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao}, w, 8, 4, dse.Exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	if d.Explored != 7*3 {
		t.Errorf("explored %d, want 21", d.Explored)
	}
	for _, p := range d.Cloud {
		if p.EDP < d.EDP {
			t.Errorf("co-design missed the cloud minimum: %g < %g", p.EDP, d.EDP)
		}
	}
	if err := d.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Pareto) == 0 {
		t.Error("empty Pareto front")
	}
}

func TestCompileMode(t *testing.T) {
	h := Default()
	hda, err := accel.New("fixed", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 256, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 768, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := h.Compile(hda, workload.MLPerf(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBestFDAPerWorkload(t *testing.T) {
	h := Default()
	// A UNet-only workload must pick a spatial style as best FDA; an
	// FC/GNMT-heavy one must pick NVDLA (Fig. 2's preference logic at
	// the workload level).
	unet, err := workload.SingleDNN("unet", 1)
	if err != nil {
		t.Fatal(err)
	}
	// UNet's anti-NVDLA preference is a Fig. 2 result at its 256-PE /
	// 32 GB/s configuration (at larger arrays NVDLA's wider lane groups
	// amortize the input re-streaming).
	fig2 := accel.Class{Name: "fig2", PEs: 256, BWGBps: 32, GlobalBufBytes: 4 << 20}
	best, err := h.BestFDA(fig2, unet)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name == "fda-NVDLA" {
		t.Errorf("best FDA for UNet = %s, want a spatial style", best.Name)
	}
	gnmt, err := workload.SingleDNN("gnmt", 1)
	if err != nil {
		t.Fatal(err)
	}
	best, err = h.BestFDA(accel.Edge, gnmt)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "fda-NVDLA" {
		t.Errorf("best FDA for GNMT = %s, want NVDLA", best.Name)
	}
}

func TestEvalRDABeatsFDALatencyCostsEnergy(t *testing.T) {
	h := Default()
	w := workload.MustNew("rda", []workload.Entry{
		{Model: "mobilenetv2", Batches: 1},
		{Model: "brq-handpose", Batches: 1},
	})
	rda, err := h.EvalRDA(accel.Edge, w)
	if err != nil {
		t.Fatal(err)
	}
	bestFDA, err := h.BestFDA(accel.Edge, w)
	if err != nil {
		t.Fatal(err)
	}
	// The RDA picks the fastest dataflow per layer on the full array:
	// its latency must not exceed any single FDA's beyond the per-layer
	// reconfiguration penalty; its energy carries the flexibility tax.
	if rda.LatencySec > bestFDA.LatencySec*1.10 {
		t.Errorf("RDA latency %.4g should be at or below best FDA %.4g", rda.LatencySec, bestFDA.LatencySec)
	}
	if rda.EnergyMJ <= bestFDA.EnergyMJ {
		t.Errorf("RDA energy %.4g should exceed best FDA %.4g (flex tax)", rda.EnergyMJ, bestFDA.EnergyMJ)
	}
}

func TestBestSMFDA(t *testing.T) {
	h := Default()
	w := workload.MustNew("sm", []workload.Entry{{Model: "mobilenetv1", Batches: 2}})
	sm, err := h.BestSMFDA(accel.Edge, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sm.EDP <= 0 {
		t.Error("SM-FDA eval incomplete")
	}
}
