// Package core is Herald itself — the paper's primary contribution:
// a framework that co-optimizes hardware resource partitioning across
// HDA sub-accelerators and the layer execution schedule for a given
// multi-DNN workload (§IV, Fig. 10).
//
// The framework operates in the two modes the paper describes:
//
//   - CoDesign ("used by architects at design time by running (i) and
//     (ii) together"): searches PE/bandwidth partitions for a style
//     combination, scheduling the workload on every candidate, and
//     returns the optimized design with its schedule.
//   - Compile ("used by compilers as a scheduler by running (ii) at
//     compile time"): schedules a workload on an already-fixed HDA.
//
// It also evaluates the paper's comparison organizations (FDA, SM-FDA,
// RDA) under the same cost model so experiments can place every point
// of Fig. 11 on one chart.
package core

import (
	"fmt"
	"sync"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dse"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Herald bundles the cost model and scheduler configuration shared by
// every operation. A single Herald (and its cache) should be reused
// across experiments — the cost cache is what makes full-paper
// reproduction fast.
type Herald struct {
	cache *maestro.Cache
	opts  sched.Options

	// schedPool recycles Compile's schedulers: a Scheduler is not
	// concurrency-safe, but its scratch state (run arrays, ledger,
	// post-processing buffers) is expensive to rebuild per call, so
	// concurrent Compiles each borrow one.
	schedPool sync.Pool
}

// New returns a Herald over a fresh cost cache with the given
// scheduler options.
func New(et energy.Table, opts sched.Options) (*Herald, error) {
	if err := et.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Herald{cache: maestro.NewCache(et), opts: opts}, nil
}

// Default returns a Herald with the 28 nm energy table and default
// scheduler options.
func Default() *Herald {
	h, err := New(energy.Default28nm(), sched.DefaultOptions())
	if err != nil {
		panic(err)
	}
	return h
}

// Cache exposes the shared cost cache (for callers composing their own
// evaluations, e.g. RDA comparisons).
func (h *Herald) Cache() *maestro.Cache { return h.cache }

// SchedOptions returns the scheduler configuration.
func (h *Herald) SchedOptions() sched.Options { return h.opts }

// Design is a co-optimized HDA design point: the Fig. 10 output
// (optimized partitioning + optimized schedule + expected costs).
type Design struct {
	HDA      *accel.HDA
	Schedule *sched.Schedule

	LatencySec float64
	EnergyMJ   float64
	EDP        float64

	// Explored is the number of design points the search covered
	// (scheduled plus bound-pruned).
	Explored int
	// Pareto is the latency-energy front over the explored cloud
	// (nil for CoDesignBest, which does not retain the cloud).
	Pareto []dse.Point
	// Cloud is every explored point (Fig. 6 / Fig. 11 raw data; nil
	// for CoDesignBest).
	Cloud []dse.Point
}

// CoDesign searches the partition space of the given class and style
// combination for workload w (design-time mode). Granularities of 0
// select the dse defaults.
func (h *Herald) CoDesign(class accel.Class, styles []dataflow.Style, w *workload.Workload, peUnits, bwUnits int, strategy dse.Strategy) (*Design, error) {
	sp := dse.Space{Class: class, Styles: styles, PEUnits: peUnits, BWUnits: bwUnits}
	opts := dse.Options{Strategy: strategy, Sched: h.opts}
	res, err := dse.Search(h.cache, sp, w, opts)
	if err != nil {
		return nil, fmt.Errorf("core: co-design failed: %w", err)
	}
	return DesignFromResult(res), nil
}

// CoDesignBest is CoDesign for callers that only need the winning
// partition: the design cloud is streamed, not retained, and the
// objective lower bound prunes partitions that provably cannot win
// (dse.Options.BestOnly + Prune) — the Best point is bit-identical to
// CoDesign's, a few times cheaper, and Design.Cloud/Pareto stay nil.
func (h *Herald) CoDesignBest(class accel.Class, styles []dataflow.Style, w *workload.Workload, peUnits, bwUnits int, strategy dse.Strategy) (*Design, error) {
	sp := dse.Space{Class: class, Styles: styles, PEUnits: peUnits, BWUnits: bwUnits}
	opts := dse.Options{Strategy: strategy, Sched: h.opts, BestOnly: true, Prune: true}
	res, err := dse.Search(h.cache, sp, w, opts)
	if err != nil {
		return nil, fmt.Errorf("core: co-design failed: %w", err)
	}
	return DesignFromResult(res), nil
}

// DesignFromResult converts a search outcome into the Fig. 10 output
// (callers running their own dse.Sweeper, e.g. the experiment
// drivers' memoized sweep handles).
func DesignFromResult(res *dse.Result) *Design {
	best := res.Best
	return &Design{
		HDA:        best.HDA,
		Schedule:   best.Schedule,
		LatencySec: best.LatencySec,
		EnergyMJ:   best.EnergyMJ,
		EDP:        best.EDP,
		Explored:   res.Explored + res.Pruned,
		Pareto:     res.Pareto,
		Cloud:      res.Points,
	}
}

// Compile schedules workload w on a fixed HDA (compile-time mode).
func (h *Herald) Compile(hda *accel.HDA, w *workload.Workload) (*sched.Schedule, error) {
	s, _ := h.schedPool.Get().(*sched.Scheduler)
	if s == nil {
		s = sched.MustNew(h.cache, h.opts)
	}
	defer h.schedPool.Put(s)
	return s.Schedule(hda, w)
}

// Eval is a uniform latency/energy/EDP triple for any accelerator
// organization, at the 1 GHz reference clock.
type Eval struct {
	Name       string
	LatencySec float64
	EnergyMJ   float64
	EDP        float64
}

// EvalHDA schedules w on an HDA (or FDA/SM-FDA represented as one) and
// summarizes it.
func (h *Herald) EvalHDA(hda *accel.HDA, w *workload.Workload) (Eval, error) {
	schd, err := h.Compile(hda, w)
	if err != nil {
		return Eval{}, err
	}
	return Eval{
		Name:       hda.Name,
		LatencySec: schd.LatencySeconds(1.0),
		EnergyMJ:   schd.EnergyMJ(),
		EDP:        schd.EDP(1.0),
	}, nil
}

// EvalFDA builds and evaluates a monolithic FDA of the given style.
func (h *Herald) EvalFDA(class accel.Class, style dataflow.Style, w *workload.Workload) (Eval, error) {
	fda, err := accel.NewFDA(class, style)
	if err != nil {
		return Eval{}, err
	}
	return h.EvalHDA(fda, w)
}

// BestFDA evaluates all dataflow styles as monolithic FDAs and returns
// the one with the lowest EDP (the paper's "best FDA" baseline).
func (h *Herald) BestFDA(class accel.Class, w *workload.Workload) (Eval, error) {
	var best Eval
	first := true
	for _, s := range dataflow.AllStyles() {
		e, err := h.EvalFDA(class, s, w)
		if err != nil {
			return Eval{}, err
		}
		if first || e.EDP < best.EDP {
			best, first = e, false
		}
	}
	return best, nil
}

// BestSMFDA evaluates 2-way scaled-out multi-FDAs of every style and
// returns the lowest-EDP one (the SM-FDA baseline of Table III).
func (h *Herald) BestSMFDA(class accel.Class, w *workload.Workload, n int) (Eval, error) {
	var best Eval
	first := true
	for _, s := range dataflow.AllStyles() {
		sm, err := accel.NewSMFDA(class, s, n)
		if err != nil {
			return Eval{}, err
		}
		e, err := h.EvalHDA(sm, w)
		if err != nil {
			return Eval{}, err
		}
		if first || e.EDP < best.EDP {
			best, first = e, false
		}
	}
	return best, nil
}

// EvalRDA runs the workload on a MAERI-style RDA: every layer of every
// instance executes sequentially on the full array under its best
// dataflow, with the RDA's flexibility taxes (§V's RDA comparison).
func (h *Herald) EvalRDA(class accel.Class, w *workload.Workload) (Eval, error) {
	rda, err := accel.NewRDA(class)
	if err != nil {
		return Eval{}, err
	}
	var cycles int64
	var pj float64
	for _, in := range w.Instances {
		for i := range in.Model.Layers {
			c, _ := rda.LayerCost(h.cache, &in.Model.Layers[i])
			cycles += c.Cycles
			pj += c.EnergyPJ()
		}
	}
	lat := float64(cycles) / 1e9
	return Eval{
		Name:       rda.Name,
		LatencySec: lat,
		EnergyMJ:   pj * 1e-9,
		EDP:        pj * 1e-12 * lat,
	}, nil
}
