package energy

import "testing"

func TestDefault28nmHierarchy(t *testing.T) {
	e := Default28nm()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Eyeriss-published ratios: RF 1x, NoC 2x, buffer 6x, DRAM
	// 200x the MAC energy.
	ratios := []struct {
		name string
		got  float64
		want float64
	}{
		{"RF", e.RF / e.MAC, 1},
		{"NoC", e.NoC / e.MAC, 2},
		{"Buffer", e.Buffer / e.MAC, 6},
		{"DRAM", e.DRAM / e.MAC, 200},
	}
	for _, r := range ratios {
		if r.got < r.want*0.999 || r.got > r.want*1.001 {
			t.Errorf("%s ratio = %.3f, want %.0f", r.name, r.got, r.want)
		}
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	bad := []Table{
		{}, // zeros
		{MAC: 1, RF: 2, NoC: 1, Buffer: 6, DRAM: 200},       // RF > NoC
		{MAC: 1, RF: 1, NoC: 2, Buffer: 1, DRAM: 200},       // NoC > Buffer
		{MAC: 1, RF: 1, NoC: 2, Buffer: 6, DRAM: 3},         // Buffer > DRAM
		{MAC: -1, RF: 1, NoC: 2, Buffer: 6, DRAM: 200},      // negative
		{MAC: 1, RF: 0.5, NoC: 0.4, Buffer: 0.3, DRAM: 0.2}, // inverted
	}
	for i, tb := range bad {
		if err := tb.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, tb)
		}
	}
}

func TestScale(t *testing.T) {
	e := Default28nm()
	s := e.Scale(1.117) // the MAERI flexibility overhead
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MAC/e.MAC < 1.116 || s.MAC/e.MAC > 1.118 {
		t.Errorf("scale factor = %f", s.MAC/e.MAC)
	}
	if s.DRAM/e.DRAM < 1.116 || s.DRAM/e.DRAM > 1.118 {
		t.Error("scale must apply uniformly")
	}
}
