// Package energy provides the per-access energy model used by the cost
// estimator. The paper analyzed energy with CAD tools on a 28 nm
// library; we substitute the well-established Eyeriss energy hierarchy
// (register file 1×, inter-PE/NoC 2×, global buffer 6×, DRAM 200× the
// cost of a MAC) scaled to 28 nm picojoule magnitudes. The hierarchy's
// ratios — not its absolute values — drive every qualitative result in
// the paper's evaluation.
package energy

import "fmt"

// Table holds per-event energies in picojoules for 8-bit words.
type Table struct {
	MAC    float64 // one multiply-accumulate
	RF     float64 // one PE-local register-file access
	NoC    float64 // one word traversing the global NoC (per delivery)
	Buffer float64 // one global (L2) scratchpad access
	DRAM   float64 // one word transferred from/to DRAM
}

// Default28nm returns the reference energy table: a 0.28 pJ MAC at
// 28 nm with the Eyeriss-normalized memory-hierarchy ratios.
func Default28nm() Table {
	const mac = 0.28
	return Table{
		MAC:    mac,
		RF:     mac * 1.0,
		NoC:    mac * 2.0,
		Buffer: mac * 6.0,
		DRAM:   mac * 200.0,
	}
}

// Validate reports whether all entries are positive and the hierarchy
// is ordered (RF <= NoC <= Buffer <= DRAM), which the cost model's
// reuse reasoning assumes.
func (t Table) Validate() error {
	if t.MAC <= 0 || t.RF <= 0 || t.NoC <= 0 || t.Buffer <= 0 || t.DRAM <= 0 {
		return fmt.Errorf("energy: table entries must be positive: %+v", t)
	}
	if t.RF > t.NoC || t.NoC > t.Buffer || t.Buffer > t.DRAM {
		return fmt.Errorf("energy: hierarchy must satisfy RF <= NoC <= Buffer <= DRAM: %+v", t)
	}
	return nil
}

// Scale returns a copy of the table with every entry multiplied by f
// (used to model e.g. the RDA's reconfigurable-fabric overhead on
// specific components).
func (t Table) Scale(f float64) Table {
	return Table{MAC: t.MAC * f, RF: t.RF * f, NoC: t.NoC * f, Buffer: t.Buffer * f, DRAM: t.DRAM * f}
}
