// Package capture records accepted serving requests as a versioned
// JSONL trace — one header line, then one entry line per request in
// acceptance order — and reads such traces back for offline replay
// (internal/replay, cmd/heraldplay).
//
// A recorder is hooked into live submission via fleet.Options.OnAccept
// (or serve.Options.OnAccept for a single engine), which fires under
// the dispatch lock with the resolved arrival cycle: live-clock
// submissions are pinned to an explicit cycle at capture time, so a
// captured trace always replays deterministically even though the
// capturing run was wall-clock driven. The scenario generator
// (internal/scenario) emits the same entry format, so generated and
// captured traffic share one replay path.
package capture

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Version is the trace-format version this package writes. Readers
// reject other versions, so a format change cannot silently replay
// garbage.
const Version = 1

// header is the first line of a trace file: the format version tag
// plus an optional free-form note identifying the capture.
type header struct {
	Version int    `json:"herald_trace"`
	Note    string `json:"note,omitempty"`
}

// Entry is one accepted request: exactly the submission fields a
// replay needs to re-issue it bit-identically on the arrival_cycle
// clock. Entries appear in the trace in acceptance order, which for a
// fleet capture is the dispatch-lock order.
type Entry struct {
	// Tenant and Model name the submission.
	Tenant string `json:"tenant"`
	Model  string `json:"model"`
	// ArrivalCycle is the resolved arrival: cycle 0 is a real arrival
	// here, never a live-clock sentinel — negative arrivals are
	// resolved at capture time and rejected by the reader.
	ArrivalCycle int64 `json:"arrival_cycle"`
	// SLACycles is the request's latency contract.
	SLACycles int64 `json:"sla_cycles,omitempty"` //herald:jsonzero 0 is the no-SLA sentinel; absent means the same
	// Priority is the request's scheduling priority.
	Priority int `json:"priority,omitempty"` //herald:jsonzero zero is the default priority; absent and 0 mean the same
	// Plan is the fusion-plan id the request was admitted under
	// ("model/segments", e.g. "unet/3"); empty means unfused.
	Plan string `json:"plan,omitempty"`
}

// validate rejects entries a replay could not re-submit.
func (e Entry) validate() error {
	if e.Tenant == "" || e.Model == "" {
		return fmt.Errorf("capture: entry needs tenant and model (got %+v)", e)
	}
	if e.ArrivalCycle < 0 {
		return fmt.Errorf("capture: entry for %s/%s has negative arrival %d; traces carry resolved arrivals",
			e.Tenant, e.Model, e.ArrivalCycle)
	}
	return nil
}

// Recorder streams entries to a JSONL trace. It is safe for
// concurrent use: submission hooks fire under the dispatcher's lock,
// but HTTP handlers and drain paths may race the last records, so the
// recorder serializes itself. Writes are buffered — call Flush before
// closing the underlying file (heraldd does so on graceful drain).
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	n   int64
	err error
}

// NewRecorder writes the version header and returns a recorder
// appending to w. The note is free-form capture metadata (config
// summary, capture time) stored in the header.
func NewRecorder(w io.Writer, note string) (*Recorder, error) {
	r := &Recorder{w: bufio.NewWriter(w)}
	if err := r.writeLine(header{Version: Version, Note: note}); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Recorder) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	if _, err := r.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	return nil
}

// Record appends one entry. The first write error is sticky: every
// later Record and Flush reports it, so a capture with a hole cannot
// pass for complete.
func (r *Recorder) Record(e Entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	if err := e.validate(); err != nil {
		r.err = err
		return err
	}
	if err := r.writeLine(e); err != nil {
		r.err = err
		return err
	}
	r.n++
	return nil
}

// Count returns the number of entries recorded so far.
func (r *Recorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Flush drains the write buffer to the underlying writer.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	if err := r.w.Flush(); err != nil {
		r.err = fmt.Errorf("capture: %w", err)
		return r.err
	}
	return nil
}

// Trace is a fully-loaded trace: the header note plus every entry in
// acceptance order.
type Trace struct {
	Note    string
	Entries []Entry
}

// Read parses a JSONL trace, validating the version header and every
// entry. Blank lines are ignored, so hand-edited traces stay legal.
func Read(rd io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("capture: %w", err)
		}
		return nil, fmt.Errorf("capture: empty trace (no header)")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("capture: bad header: %w", err)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("capture: trace version %d, this build reads %d", h.Version, Version)
	}
	t := &Trace{Note: h.Note}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("capture: line %d: %w", line, err)
		}
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		t.Entries = append(t.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return t, nil
}

// ReadFile loads a trace file (see Read).
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Write renders a trace through a Recorder, so generated traces
// (internal/scenario, heraldplay -gen) and live captures are
// byte-compatible.
func Write(w io.Writer, note string, entries []Entry) error {
	rec, err := NewRecorder(w, note)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := rec.Record(e); err != nil {
			return err
		}
	}
	return rec.Flush()
}

// WriteFile writes a trace file (see Write), creating or truncating
// path.
func WriteFile(path, note string, entries []Entry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	if err := Write(f, note, entries); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	return nil
}
