package capture

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRecorderRoundTrip(t *testing.T) {
	entries := []Entry{
		{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 0, SLACycles: 1 << 20},
		{Tenant: "b", Model: "resnet50", ArrivalCycle: 100, Priority: 2},
		{Tenant: "a", Model: "unet", ArrivalCycle: 250, Plan: "unet/3"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, "round trip", entries); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Note != "round trip" || !reflect.DeepEqual(tr.Entries, entries) {
		t.Fatalf("round trip: %+v", tr)
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	entries := []Entry{
		{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 0},
		{Tenant: "b", Model: "mobilenetv1", ArrivalCycle: 7, SLACycles: 5},
	}
	var one, two bytes.Buffer
	if err := Write(&one, "n", entries); err != nil {
		t.Fatal(err)
	}
	if err := Write(&two, "n", entries); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("same entries rendered differently")
	}
}

func TestZeroArrivalSurvives(t *testing.T) {
	// Cycle 0 is a real arrival: it must be emitted and read back, not
	// dropped as a zero value.
	var buf bytes.Buffer
	if err := Write(&buf, "", []Entry{{Tenant: "t", Model: "m", ArrivalCycle: 0}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"arrival_cycle":0`) {
		t.Fatalf("arrival_cycle 0 dropped from %q", buf.String())
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 1 || tr.Entries[0].ArrivalCycle != 0 {
		t.Fatalf("entries %+v", tr.Entries)
	}
}

func TestReadRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad header":       "not json\n",
		"wrong version":    `{"herald_trace":99}` + "\n",
		"bad entry":        `{"herald_trace":1}` + "\nnope\n",
		"no tenant":        `{"herald_trace":1}` + "\n" + `{"model":"m","arrival_cycle":1}` + "\n",
		"negative arrival": `{"herald_trace":1}` + "\n" + `{"tenant":"t","model":"m","arrival_cycle":-1}` + "\n",
	}
	for name, raw := range cases {
		if _, err := Read(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRecorderRejectsInvalidEntries(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Record(Entry{Tenant: "t", Model: "m", ArrivalCycle: -5}); err == nil {
		t.Fatal("negative arrival recorded")
	}
	// The error is sticky: a capture with a hole must not pass for
	// complete.
	if err := rec.Record(Entry{Tenant: "t", Model: "m", ArrivalCycle: 1}); err == nil {
		t.Fatal("recorder kept accepting after an error")
	}
	if err := rec.Flush(); err == nil {
		t.Fatal("flush cleared the sticky error")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := rec.Record(Entry{Tenant: "t", Model: "m", ArrivalCycle: int64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 400 {
		t.Fatalf("count %d, want 400", rec.Count())
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 400 {
		t.Fatalf("%d entries, want 400", len(tr.Entries))
	}
}
