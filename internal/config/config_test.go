package config

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `{
  "class": "edge",
  "partitions": [
    {"style": "nvdla", "pes": 128, "bw_gbps": 4},
    {"style": "shi-diannao", "pes": 896, "bw_gbps": 12}
  ],
  "workload": {
    "name": "custom-arvr",
    "entries": [
      {"model": "unet", "batches": 2},
      {"model": "mobilenetv2", "batches": 1}
    ]
  }
}`

func TestReadValid(t *testing.T) {
	f, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	class, err := f.BuildClass()
	if err != nil {
		t.Fatal(err)
	}
	if class.Name != "edge" || class.PEs != 1024 {
		t.Errorf("class = %+v", class)
	}
	w, err := f.BuildWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "custom-arvr" || w.NumInstances() != 3 {
		t.Errorf("workload = %s, %d instances", w.Name, w.NumInstances())
	}
	hda, err := f.BuildHDA("test")
	if err != nil {
		t.Fatal(err)
	}
	if hda.NumSubs() != 2 || !hda.Heterogeneous() {
		t.Errorf("hda = %v", hda)
	}
}

func TestCustomClass(t *testing.T) {
	doc := `{
	  "custom_class": {"name": "tiny", "pes": 256, "bw_gbps": 8, "global_buf_mib": 2},
	  "workload": {"entries": [{"model": "mobilenetv1", "batches": 1}]}
	}`
	f, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	class, err := f.BuildClass()
	if err != nil {
		t.Fatal(err)
	}
	if class.PEs != 256 || class.GlobalBufBytes != 2<<20 {
		t.Errorf("class = %+v", class)
	}
}

func TestReadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"classs": "edge", "workload": {"entries": [{"model": "unet", "batches": 1}]}}`,
		"no class":      `{"workload": {"entries": [{"model": "unet", "batches": 1}]}}`,
		"no entries":    `{"class": "edge", "workload": {"entries": []}}`,
		"bad model":     `{"class": "edge", "workload": {"entries": [{"model": "vgg99", "batches": 1}]}}`,
		"bad style": `{"class": "edge",
			"partitions": [{"style": "tpu", "pes": 1024, "bw_gbps": 16}],
			"workload": {"entries": [{"model": "unet", "batches": 1}]}}`,
		"bad partition sum": `{"class": "edge",
			"partitions": [{"style": "nvdla", "pes": 100, "bw_gbps": 16}],
			"workload": {"entries": [{"model": "unet", "batches": 1}]}}`,
		"bad class": `{"class": "datacenter", "workload": {"entries": [{"model": "unet", "batches": 1}]}}`,
		"not json":  `hello`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted invalid document", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Class != f.Class || len(f2.Partitions) != len(f.Partitions) {
		t.Error("round trip changed the document")
	}
}

func TestLoadFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Class != "edge" {
		t.Error("load mismatch")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
