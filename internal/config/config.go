// Package config loads and saves experiment setups — accelerator
// descriptions and workload compositions — as JSON, so the CLI tools
// and downstream users can define scenarios without writing Go. The
// schema mirrors the paper's vocabulary: classes (Table IV),
// partitions (Definition 1), workload entries (Table II).
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/workload"
)

// File is the top-level JSON document.
type File struct {
	// Class selects a named Table IV class ("edge", "mobile", "cloud")
	// or, if Custom is set, a custom budget.
	Class  string       `json:"class,omitempty"`
	Custom *CustomClass `json:"custom_class,omitempty"`

	// Partitions defines the HDA's sub-accelerators. Empty means the
	// caller runs a DSE instead of a fixed design.
	Partitions []Partition `json:"partitions,omitempty"`

	// Workload composes model instances.
	Workload Workload `json:"workload"`
}

// CustomClass is a user-defined resource budget.
type CustomClass struct {
	Name        string  `json:"name"`
	PEs         int     `json:"pes"`
	BWGBps      float64 `json:"bw_gbps"`
	GlobalBufMB int     `json:"global_buf_mib"`
}

// Partition is one sub-accelerator share.
type Partition struct {
	Style  string  `json:"style"`
	PEs    int     `json:"pes"`
	BWGBps float64 `json:"bw_gbps"`
}

// Workload is a named list of entries.
type Workload struct {
	Name    string  `json:"name"`
	Entries []Entry `json:"entries"`
}

// Entry requests batches of one zoo model.
type Entry struct {
	Model   string `json:"model"`
	Batches int    `json:"batches"`
}

// Load reads and validates a config file.
func Load(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses a config document from r.
func Read(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var file File
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if _, err := file.BuildWorkload(); err != nil {
		return nil, err
	}
	if _, err := file.BuildClass(); err != nil {
		return nil, err
	}
	if len(file.Partitions) > 0 {
		if _, err := file.BuildHDA("config"); err != nil {
			return nil, err
		}
	}
	return &file, nil
}

// Write serializes the file as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// BuildClass resolves the accelerator class.
func (f *File) BuildClass() (accel.Class, error) {
	if f.Custom != nil {
		c := accel.Class{
			Name:           f.Custom.Name,
			PEs:            f.Custom.PEs,
			BWGBps:         f.Custom.BWGBps,
			GlobalBufBytes: int64(f.Custom.GlobalBufMB) << 20,
		}
		if c.Name == "" {
			c.Name = "custom"
		}
		if err := c.Validate(); err != nil {
			return accel.Class{}, err
		}
		return c, nil
	}
	if f.Class == "" {
		return accel.Class{}, fmt.Errorf("config: neither class nor custom_class given")
	}
	return accel.ParseClass(f.Class)
}

// BuildWorkload constructs the workload.
func (f *File) BuildWorkload() (*workload.Workload, error) {
	if len(f.Workload.Entries) == 0 {
		return nil, fmt.Errorf("config: workload %q has no entries", f.Workload.Name)
	}
	name := f.Workload.Name
	if name == "" {
		name = "config-workload"
	}
	entries := make([]workload.Entry, len(f.Workload.Entries))
	for i, e := range f.Workload.Entries {
		entries[i] = workload.Entry{Model: e.Model, Batches: e.Batches}
	}
	return workload.New(name, entries)
}

// BuildHDA constructs the fixed HDA (requires Partitions).
func (f *File) BuildHDA(name string) (*accel.HDA, error) {
	if len(f.Partitions) == 0 {
		return nil, fmt.Errorf("config: no partitions defined")
	}
	class, err := f.BuildClass()
	if err != nil {
		return nil, err
	}
	parts := make([]accel.Partition, len(f.Partitions))
	for i, p := range f.Partitions {
		style, err := dataflow.ParseStyle(p.Style)
		if err != nil {
			return nil, err
		}
		parts[i] = accel.Partition{Style: style, PEs: p.PEs, BWGBps: p.BWGBps}
	}
	return accel.New(name, class, parts)
}
