package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/capture"
)

func kinds() []Spec {
	return []Spec{
		{Name: "c", Kind: Smooth},
		{Name: "z", Kind: Zipf, Seed: 1},
		{Name: "d", Kind: Diurnal, Seed: 2},
		{Name: "f", Kind: Flash, Seed: 3},
		{Name: "x", Kind: Correlated, Seed: 4},
		{Name: "p", Kind: FlipFlop, Seed: 5},
	}
}

func TestGenerateDeterministicAndSorted(t *testing.T) {
	for _, spec := range kinds() {
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same spec generated different traces", spec.Name)
		}
		if len(a) == 0 {
			t.Errorf("%s: empty trace", spec.Name)
		}
		for i := 1; i < len(a); i++ {
			if a[i].ArrivalCycle < a[i-1].ArrivalCycle {
				t.Errorf("%s: arrivals not sorted at %d", spec.Name, i)
				break
			}
		}
		// The rendered trace is byte-stable too (the committed-corpus
		// guarantee).
		var one, two bytes.Buffer
		if err := capture.Write(&one, spec.Note(), a); err != nil {
			t.Fatal(err)
		}
		if err := capture.Write(&two, spec.Note(), b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one.Bytes(), two.Bytes()) {
			t.Errorf("%s: rendered trace not byte-stable", spec.Name)
		}
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	a, err := Generate(Spec{Name: "z", Kind: Zipf, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Spec{Name: "z", Kind: Zipf, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical traces")
	}
}

func TestSteadyTenantEverywhere(t *testing.T) {
	for _, spec := range kinds() {
		entries, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		steady := 0
		for _, e := range entries {
			if e.Tenant == "steady" {
				steady++
			}
		}
		if steady != 32 {
			t.Errorf("%s: %d steady probes, want 32", spec.Name, steady)
		}
	}
}

func TestFlashConcentration(t *testing.T) {
	spec := Spec{Name: "f", Kind: Flash, Seed: 9, Requests: 400}
	entries, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := spec.normalized()
	lo := int64(n.FlashAt * float64(n.HorizonCycles))
	hi := lo + int64(n.FlashWidth*float64(n.HorizonCycles))
	in := 0
	for _, e := range entries {
		if e.Tenant != "steady" && e.ArrivalCycle >= lo && e.ArrivalCycle < hi {
			in++
		}
	}
	if in < 200 {
		t.Errorf("flash window holds %d of 400 hostile requests; want the crowd half", in)
	}
}

func TestFlipFlopAlternates(t *testing.T) {
	spec := Spec{Name: "p", Kind: FlipFlop, Seed: 1}
	entries, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := spec.normalized()
	for _, e := range entries {
		if e.Tenant == "steady" {
			continue
		}
		phase := (e.ArrivalCycle / n.FlipPeriodCycles) % 2
		if e.Model != n.Models[phase] {
			t.Fatalf("arrival %d phase %d serves %s, want %s", e.ArrivalCycle, phase, e.Model, n.Models[phase])
		}
	}
}

func TestZipfIsHeavyTailed(t *testing.T) {
	entries, err := Generate(Spec{Name: "z", Kind: Zipf, Seed: 3, Requests: 400})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	total := 0
	for _, e := range entries {
		if e.Tenant != "steady" {
			counts[e.Tenant]++
			total++
		}
	}
	// Uniform would give t00 1/8 of the traffic; the Zipf head must
	// take several times that.
	if counts["t00"]*3 < total {
		t.Errorf("tenant t00 holds %d of %d — not heavy-tailed", counts["t00"], total)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Kind: Zipf},                          // no name
		{Name: "x", Kind: "nope"},             // unknown kind
		{Name: "x", Kind: Zipf, ZipfS: 0.5},   // exponent <= 1
		{Name: "x", Kind: FlipFlop, Models: []string{"mobilenetv1"}}, // one model
		{Name: "x", Kind: Flash, FlashAt: 0.99, FlashWidth: 0.5},     // window past horizon
		{Name: "x", Kind: Zipf, Models: []string{"no-such-model"}},
		{Name: "x", Kind: Zipf, Tenants: -1},
		{Name: "x", Kind: Zipf, Requests: -1},
		{Name: "x", Kind: Zipf, HorizonCycles: -1},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("case %d (%+v): accepted", i, s)
		}
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(strings.NewReader(`{"name":"n","kind":"zipf","seed":7,"requests":12}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "n" || s.Seed != 7 || s.Requests != 12 {
		t.Fatalf("spec %+v", s)
	}
	if _, err := ParseSpec(strings.NewReader(`{"name":"n","kind":"zipf","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec(strings.NewReader(`{"name":"n","kind":"wat"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}
