// Package scenario generates hostile multi-tenant request traces that
// the periodic workload.Stream model cannot express: heavy-tailed
// (Zipf) tenant populations, diurnal ramps, flash crowds, correlated
// cross-tenant bursts, and adversarial mix flip-flops whose period is
// tuned to sit just inside a repartition controller's Confirm/Cooldown
// hysteresis window. Traces come out in the capture entry format with
// explicit arrival cycles, so generated and captured traffic share one
// replay path (internal/replay, cmd/heraldplay).
//
// Generation is seeded and wallclock-free: the same spec yields a
// byte-identical trace on every run and on every Go release (math/rand
// v1 sequences are pinned by the Go 1 compatibility promise), so a
// committed spec is itself a reproducible artifact — the corpus under
// testdata/scenarios/ stores both the specs and the traces they
// expand to, and CI regenerates one from the other.
//
// Every scenario also carries a low-rate "steady" control tenant
// (SteadyPeriodCycles) emitting the same periodic probe stream as the
// smooth control scenario. Comparing the steady tenant's latency
// percentiles under hostile cross-traffic against the smooth-only run
// is how the replay drill (examples/replay) bounds p99 degradation.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"

	"repro/internal/capture"
	"repro/internal/dnn"
)

// Scenario kinds.
const (
	// Smooth is the control: only the steady periodic tenant.
	Smooth = "smooth"
	// Zipf draws each request's tenant from a Zipf distribution —
	// a heavy-tailed population where a few tenants dominate.
	Zipf = "zipf"
	// Diurnal modulates arrival density sinusoidally across the
	// horizon (Peaks load peaks, troughs near zero).
	Diurnal = "diurnal"
	// Flash is uniform background traffic plus a crowd: half the
	// requests compressed into a FlashWidth slice of the horizon.
	Flash = "flash"
	// Correlated fires every tenant in the same Bursts narrow epochs —
	// the cross-tenant correlation that defeats per-tenant smoothing.
	Correlated = "correlated"
	// FlipFlop alternates the model mix between Models[0] and
	// Models[1] every FlipPeriodCycles — the adversarial oscillation a
	// repartitioning controller must not chase.
	FlipFlop = "flipflop"
)

// Spec is one scenario: a kind plus its knobs. The zero value of
// every knob means "use the default", so committed spec files stay
// terse. Specs marshal to JSON for the on-disk corpus.
type Spec struct {
	// Name labels the scenario (file names, digests, logs).
	Name string `json:"name"`
	// Kind selects the generator (Smooth, Zipf, Diurnal, Flash,
	// Correlated, FlipFlop).
	Kind string `json:"kind"`
	// Seed seeds the generator.
	Seed int64 `json:"seed,omitempty"` //herald:jsonzero 0 is a valid seed and the default; absent means the same on this input struct
	// Requests is the hostile request volume (the steady control
	// tenant's probes come on top; default 160, forced 0 for Smooth).
	Requests int `json:"requests,omitempty"` //herald:jsonzero 0 picks the default volume on this input struct; absent means the same
	// HorizonCycles is the arrival horizon (default 12e6 ≈ 12 ms at
	// 1 GHz).
	HorizonCycles int64 `json:"horizon_cycles,omitempty"` //herald:jsonzero 0 picks the default horizon on this input struct; absent means the same
	// Models is the model pool (default mobilenetv1 + brq-handpose;
	// FlipFlop alternates Models[0] and Models[1]).
	Models []string `json:"models,omitempty"`
	// Tenants is the hostile tenant population size (default 8).
	Tenants int `json:"tenants,omitempty"` //herald:jsonzero 0 picks the default population on this input struct; absent means the same
	// SLACycles is stamped on every generated request (0 = no SLA).
	SLACycles int64 `json:"sla_cycles,omitempty"` //herald:jsonzero 0 is the no-SLA sentinel; absent means the same
	// SteadyPeriodCycles spaces the steady control tenant's probes
	// (default HorizonCycles/32; negative disables the tenant).
	SteadyPeriodCycles int64 `json:"steady_period_cycles,omitempty"` //herald:jsonzero 0 picks the default period on this input struct; absent means the same

	// ZipfS is the Zipf exponent (> 1; default 1.3).
	ZipfS float64 `json:"zipf_s,omitempty"` //herald:jsonzero 0 picks the default exponent on this input struct; absent means the same
	// Peaks is the diurnal peak count across the horizon (default 2).
	Peaks int `json:"peaks,omitempty"` //herald:jsonzero 0 picks the default peak count on this input struct; absent means the same
	// FlashAt / FlashWidth place the flash crowd as fractions of the
	// horizon (defaults 0.5 and 0.06).
	FlashAt    float64 `json:"flash_at,omitempty"`    //herald:jsonzero 0 picks the default position on this input struct; absent means the same
	FlashWidth float64 `json:"flash_width,omitempty"` //herald:jsonzero 0 picks the default width on this input struct; absent means the same
	// Bursts is the correlated burst-epoch count (default 4);
	// BurstWidthCycles is each epoch's width (default Horizon/64).
	Bursts           int   `json:"bursts,omitempty"`             //herald:jsonzero 0 picks the default epoch count on this input struct; absent means the same
	BurstWidthCycles int64 `json:"burst_width_cycles,omitempty"` //herald:jsonzero 0 picks the default width on this input struct; absent means the same
	// FlipPeriodCycles is the mix oscillation period (default
	// Horizon/8). Tune it against the controller's step cadence: a
	// period shorter than Confirm consecutive controller windows keeps
	// each drift inside the hysteresis, so a stable controller must
	// refuse to chase it.
	FlipPeriodCycles int64 `json:"flip_period_cycles,omitempty"` //herald:jsonzero 0 picks the default period on this input struct; absent means the same
}

// normalized applies defaults and validates; it leaves the receiver
// untouched.
func (s Spec) normalized() (Spec, error) {
	if s.Name == "" {
		return s, fmt.Errorf("scenario: spec needs a name")
	}
	if s.HorizonCycles == 0 {
		s.HorizonCycles = 12_000_000
	}
	if s.HorizonCycles < 0 {
		return s, fmt.Errorf("scenario %s: negative horizon %d", s.Name, s.HorizonCycles)
	}
	if s.Requests == 0 {
		s.Requests = 160
	}
	if s.Kind == Smooth {
		s.Requests = 0
	}
	if s.Requests < 0 {
		return s, fmt.Errorf("scenario %s: negative request volume %d", s.Name, s.Requests)
	}
	if len(s.Models) == 0 {
		s.Models = []string{"mobilenetv1", "brq-handpose"}
	}
	for _, m := range s.Models {
		if _, err := dnn.ByName(m); err != nil {
			return s, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Tenants == 0 {
		s.Tenants = 8
	}
	if s.Tenants < 1 {
		return s, fmt.Errorf("scenario %s: needs at least one tenant (got %d)", s.Name, s.Tenants)
	}
	if s.SteadyPeriodCycles == 0 {
		s.SteadyPeriodCycles = s.HorizonCycles / 32
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.3
	}
	if s.Peaks == 0 {
		s.Peaks = 2
	}
	if s.FlashAt == 0 {
		s.FlashAt = 0.5
	}
	if s.FlashWidth == 0 {
		s.FlashWidth = 0.06
	}
	if s.Bursts == 0 {
		s.Bursts = 4
	}
	if s.BurstWidthCycles == 0 {
		s.BurstWidthCycles = s.HorizonCycles / 64
	}
	if s.FlipPeriodCycles == 0 {
		s.FlipPeriodCycles = s.HorizonCycles / 8
	}
	switch s.Kind {
	case Smooth, Zipf, Diurnal, Flash, Correlated, FlipFlop:
	default:
		return s, fmt.Errorf("scenario %s: unknown kind %q", s.Name, s.Kind)
	}
	if s.Kind == Zipf && s.ZipfS <= 1 {
		return s, fmt.Errorf("scenario %s: zipf exponent must be > 1 (got %g)", s.Name, s.ZipfS)
	}
	if s.Kind == FlipFlop && len(s.Models) < 2 {
		return s, fmt.Errorf("scenario %s: flipflop needs two models", s.Name)
	}
	if s.Kind == Flash && (s.FlashAt < 0 || s.FlashWidth <= 0 || s.FlashAt+s.FlashWidth > 1) {
		return s, fmt.Errorf("scenario %s: flash window [%g, %g+%g] outside the horizon",
			s.Name, s.FlashAt, s.FlashAt, s.FlashWidth)
	}
	if s.Kind == Smooth && s.SteadyPeriodCycles < 0 {
		return s, fmt.Errorf("scenario %s: smooth needs the steady tenant", s.Name)
	}
	return s, nil
}

// Note renders the trace-header note a generated trace carries — a
// deterministic function of the spec, so regenerating a committed
// trace reproduces it byte for byte.
func (s Spec) Note() string {
	n, err := s.normalized()
	if err != nil {
		n = s
	}
	return fmt.Sprintf("scenario %s kind=%s seed=%d requests=%d horizon=%d tenants=%d",
		n.Name, n.Kind, n.Seed, n.Requests, n.HorizonCycles, n.Tenants)
}

// ParseSpec reads one JSON spec.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("scenario: %w", err)
	}
	_, err := s.normalized()
	return s, err
}

// LoadSpec reads one JSON spec file.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// tenant names hostile tenant i ("t00", "t01", ...).
func tenant(i int) string { return fmt.Sprintf("t%02d", i) }

// Generate expands a spec into a capture-format trace, sorted by
// arrival cycle (ties keep generation order). Deterministic: the same
// spec always returns the same entries.
func Generate(spec Spec) ([]capture.Entry, error) {
	s, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(s.Seed))
	entry := func(ten string, model string, cycle int64) capture.Entry {
		return capture.Entry{Tenant: ten, Model: model, ArrivalCycle: cycle, SLACycles: s.SLACycles}
	}
	pick := func() string { return s.Models[r.Intn(len(s.Models))] }
	var out []capture.Entry

	switch s.Kind {
	case Smooth:
		// Only the steady control tenant, appended below.
	case Zipf:
		z := rand.NewZipf(r, s.ZipfS, 1, uint64(s.Tenants-1))
		for i := 0; i < s.Requests; i++ {
			out = append(out, entry(tenant(int(z.Uint64())), pick(), r.Int63n(s.HorizonCycles)))
		}
	case Diurnal:
		// Rejection-sample the raised-cosine density: Peaks peaks, dark
		// troughs. Acceptance averages 1/2, so the loop terminates fast.
		for i := 0; i < s.Requests; i++ {
			var c int64
			for {
				c = r.Int63n(s.HorizonCycles)
				x := float64(c) / float64(s.HorizonCycles)
				if r.Float64() < 0.5*(1-math.Cos(2*math.Pi*float64(s.Peaks)*x)) {
					break
				}
			}
			out = append(out, entry(tenant(r.Intn(s.Tenants)), pick(), c))
		}
	case Flash:
		base := s.Requests / 2
		start := int64(s.FlashAt * float64(s.HorizonCycles))
		width := max(int64(s.FlashWidth*float64(s.HorizonCycles)), 1)
		for i := 0; i < base; i++ {
			out = append(out, entry(tenant(r.Intn(s.Tenants)), pick(), r.Int63n(s.HorizonCycles)))
		}
		for i := base; i < s.Requests; i++ {
			out = append(out, entry(tenant(r.Intn(s.Tenants)), pick(), start+r.Int63n(width)))
		}
	case Correlated:
		per := max(s.Requests/(s.Bursts*s.Tenants), 1)
		for k := 0; k < s.Bursts; k++ {
			epoch := int64(k+1) * s.HorizonCycles / int64(s.Bursts+1)
			for t := 0; t < s.Tenants; t++ {
				for j := 0; j < per; j++ {
					out = append(out, entry(tenant(t), pick(), epoch+r.Int63n(s.BurstWidthCycles)))
				}
			}
		}
	case FlipFlop:
		for i := 0; i < s.Requests; i++ {
			c := r.Int63n(s.HorizonCycles)
			phase := (c / s.FlipPeriodCycles) % 2
			out = append(out, entry(tenant(r.Intn(s.Tenants)), s.Models[phase], c))
		}
	}

	if s.SteadyPeriodCycles > 0 {
		for c := int64(0); c < s.HorizonCycles; c += s.SteadyPeriodCycles {
			out = append(out, entry("steady", s.Models[0], c))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ArrivalCycle < out[j].ArrivalCycle })
	return out, nil
}
