// Package herald is a from-scratch Go reproduction of
//
//	Kwon, Lai, Pellauer, Krishna, Chen, Chandra.
//	"Heterogeneous Dataflow Accelerators for Multi-DNN Workloads."
//	HPCA 2021 (arXiv:1909.07437).
//
// It provides the complete system the paper describes: a MAESTRO-style
// analytical cost model for DNN accelerators, the three fixed dataflow
// styles the paper evaluates (NVDLA, Shi-diannao, Eyeriss), the four
// accelerator organizations (FDA, SM-FDA, RDA, HDA), the Herald layer
// scheduler with load balancing and idle-time post-processing, and the
// hardware/schedule co-design-space exploration that identifies the
// Maelstrom architecture — plus a benchmark harness regenerating every
// table and figure of the paper's evaluation.
//
// # Quick start
//
//	h := herald.NewFramework()
//	design, err := h.CoDesign(herald.Edge, herald.MaelstromStyles(),
//	    herald.ARVRA(), 16, 8, herald.Exhaustive)
//	if err != nil { ... }
//	fmt.Println(design.HDA)           // optimized PE/BW partitioning
//	fmt.Println(design.LatencySec)    // expected latency
//	fmt.Println(design.EnergyMJ)      // expected energy
//
// The package is a facade over the internal packages; every exported
// name maps one-to-one onto a concept in the paper — plus the serving
// stack grown on top of it: the online multi-tenant serving engine
// (ServingEngine), multi-HDA fleet dispatch (Fleet, routing policies),
// warm re-sweeps of the partition search on live traffic (Sweeper,
// Fleet.Resweep), and the dynamic-repartitioning controller that acts
// on those probes with live migrations (RepartitionController).
// docs/ARCHITECTURE.md maps the layers; docs/OPERATIONS.md is the
// serving-daemon runbook.
package herald

import (
	"context"
	"io"

	"repro/internal/accel"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/dse"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/maestro"
	"repro/internal/refsim"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DNN workload substrate (Table I / Table II).
type (
	// Layer is one DNN layer shape (K,C,Y,X,R,S + operator).
	Layer = dnn.Layer
	// Op is a layer operator type (CONV2D, PWCONV, DWCONV, FC, UPCONV).
	Op = dnn.Op
	// Model is an ordered list of layers with a linear dependence chain.
	Model = dnn.Model
	// Workload is a multi-DNN workload: model instances × batches.
	Workload = workload.Workload
	// WorkloadEntry requests batches of one zoo model.
	WorkloadEntry = workload.Entry
)

// Layer operator constants.
const (
	Conv2D = dnn.Conv2D
	PWConv = dnn.PWConv
	DWConv = dnn.DWConv
	FC     = dnn.FC
	UpConv = dnn.UpConv
)

// Dataflows and mappings (§II-B, Fig. 4).
type (
	// Style is a fixed dataflow style.
	Style = dataflow.Style
	// Mapping is a dataflow instantiated for one layer on one array.
	Mapping = dataflow.Mapping
)

// The three dataflow styles of the evaluation.
const (
	NVDLA      = dataflow.NVDLA
	ShiDiannao = dataflow.ShiDiannao
	Eyeriss    = dataflow.Eyeriss
)

// Cost model (§IV-B).
type (
	// HW describes one (sub-)accelerator substrate.
	HW = maestro.HW
	// Cost is an estimated layer execution cost.
	Cost = maestro.Cost
	// CostCache memoizes cost queries.
	CostCache = maestro.Cache
	// EnergyTable holds per-access energies.
	EnergyTable = energy.Table
)

// Accelerator organizations (Table III / Table IV).
type (
	// Class is an accelerator resource budget (edge/mobile/cloud).
	Class = accel.Class
	// HDA is a heterogeneous dataflow accelerator (Definition 1);
	// FDAs and SM-FDAs are degenerate HDAs.
	HDA = accel.HDA
	// Partition assigns one sub-accelerator its style and resources.
	Partition = accel.Partition
	// RDA is a MAERI-style reconfigurable dataflow accelerator.
	RDA = accel.RDA
)

// The Table IV accelerator classes.
var (
	Edge   = accel.Edge
	Mobile = accel.Mobile
	Cloud  = accel.Cloud
)

// Scheduling (§IV-D).
type (
	// Schedule is a layer execution schedule with aggregate costs.
	Schedule = sched.Schedule
	// SchedOptions configures the Herald scheduler.
	SchedOptions = sched.Options
	// Scheduler generates schedules for HDAs.
	Scheduler = sched.Scheduler
	// Metric selects the per-layer preference metric.
	Metric = sched.Metric
	// Ordering selects the initial layer ordering heuristic.
	Ordering = sched.Ordering
)

// Scheduler metric and ordering constants.
const (
	MetricEDP     = sched.MetricEDP
	MetricLatency = sched.MetricLatency
	MetricEnergy  = sched.MetricEnergy
	BreadthFirst  = sched.BreadthFirst
	DepthFirst    = sched.DepthFirst
)

// Design space exploration (§IV-C).
type (
	// SearchSpace is a partitioning design space.
	SearchSpace = dse.Space
	// SearchStrategy selects exhaustive/binary/random search.
	SearchStrategy = dse.Strategy
	// DesignPoint is one evaluated partition.
	DesignPoint = dse.Point
)

// Search strategies.
const (
	Exhaustive = dse.Exhaustive
	Binary     = dse.Binary
	Random     = dse.Random
)

// SearchObjective selects what a search's Best point minimizes.
type SearchObjective = dse.Objective

// Search objectives (§IV-D: "users can select the metric").
const (
	ObjectiveEDP     = dse.ObjectiveEDP
	ObjectiveLatency = dse.ObjectiveLatency
	ObjectiveEnergy  = dse.ObjectiveEnergy
)

// Framework is Herald itself: the co-optimizer of hardware resource
// partitioning and layer execution scheduling (§IV, Fig. 10).
type Framework = core.Herald

// Design is a co-optimized HDA design point (Fig. 10 outputs).
type Design = core.Design

// Eval is a uniform latency/energy/EDP summary.
type Eval = core.Eval

// NewFramework returns a Herald framework with the default 28 nm
// energy table and scheduler options.
func NewFramework() *Framework { return core.Default() }

// NewFrameworkWith returns a Herald framework with custom energy and
// scheduler configurations.
func NewFrameworkWith(et EnergyTable, opts SchedOptions) (*Framework, error) {
	return core.New(et, opts)
}

// DefaultEnergyTable returns the 28 nm Eyeriss-ratio energy table.
func DefaultEnergyTable() EnergyTable { return energy.Default28nm() }

// DefaultSchedOptions returns Herald's standard scheduler options.
func DefaultSchedOptions() SchedOptions { return sched.DefaultOptions() }

// GreedySchedOptions returns the naive greedy baseline scheduler.
func GreedySchedOptions() SchedOptions { return sched.GreedyOptions() }

// ModelByName returns a model from the zoo (resnet50, mobilenetv1,
// mobilenetv2, unet, brq-handpose, fl-depthnet, ssd-resnet34,
// ssd-mobilenetv1, gnmt).
func ModelByName(name string) (*Model, error) { return dnn.ByName(name) }

// ModelNames lists the zoo.
func ModelNames() []string { return dnn.Names() }

// AllStyles returns the three evaluated dataflow styles.
func AllStyles() []Style { return dataflow.AllStyles() }

// MaelstromStyles returns the NVDLA + Shi-diannao pair of the paper's
// identified architecture.
func MaelstromStyles() []Style { return []Style{NVDLA, ShiDiannao} }

// ParseStyle resolves a dataflow style by name.
func ParseStyle(name string) (Style, error) { return dataflow.ParseStyle(name) }

// ParseClass resolves an accelerator class by name.
func ParseClass(name string) (Class, error) { return accel.ParseClass(name) }

// Classes returns the three Table IV accelerator classes.
func Classes() []Class { return accel.Classes() }

// ARVRA returns the AR/VR-A workload of Table II.
func ARVRA() *Workload { return workload.ARVRA() }

// ARVRB returns the AR/VR-B workload of Table II.
func ARVRB() *Workload { return workload.ARVRB() }

// MLPerf returns the MLPerf multi-stream workload of Table II at the
// given per-model batch count.
func MLPerf(batches int) *Workload { return workload.MLPerf(batches) }

// SingleDNN returns a single-model workload (Fig. 12's case study).
func SingleDNN(model string, batches int) (*Workload, error) {
	return workload.SingleDNN(model, batches)
}

// NewWorkload builds a custom workload from zoo entries.
func NewWorkload(name string, entries []WorkloadEntry) (*Workload, error) {
	return workload.New(name, entries)
}

// NewHDA builds an HDA from explicit partitions (Definition 1).
func NewHDA(name string, class Class, parts []Partition) (*HDA, error) {
	return accel.New(name, class, parts)
}

// NewFDA builds a monolithic fixed-dataflow accelerator.
func NewFDA(class Class, style Style) (*HDA, error) { return accel.NewFDA(class, style) }

// NewSMFDA builds a scaled-out multi-FDA with n equal sub-accelerators.
func NewSMFDA(class Class, style Style, n int) (*HDA, error) {
	return accel.NewSMFDA(class, style, n)
}

// NewRDA builds a MAERI-style reconfigurable accelerator with the
// paper-calibrated flexibility taxes.
func NewRDA(class Class) (*RDA, error) { return accel.NewRDA(class) }

// NewScheduler returns a Herald scheduler over a cost cache. A
// Scheduler keeps private scratch state and an unsynchronized L0 cost
// cache, so it is NOT safe for concurrent use: create one per
// goroutine and let them share the (concurrency-safe) CostCache.
func NewScheduler(cache *CostCache, opts SchedOptions) (*Scheduler, error) {
	return sched.New(cache, opts)
}

// NewCostCache returns a memoizing cost-model cache.
func NewCostCache(et EnergyTable) *CostCache { return maestro.NewCache(et) }

// EstimateLayer runs the analytical cost model for one layer on one
// substrate under one dataflow style.
func EstimateLayer(l *Layer, style Style, hw HW, et EnergyTable) Cost {
	return maestro.Estimate(l, style, hw, et)
}

// Search explores a partitioning space for a workload.
func Search(cache *CostCache, space SearchSpace, w *Workload, opts SearchOptions) (*SearchResult, error) {
	return dse.Search(cache, space, w, opts)
}

// SearchOptions configures a DSE run. BestOnly drops the design cloud
// (memory O(workers) instead of O(space)); Prune additionally skips
// scheduling partitions whose objective lower bound provably cannot
// win — Best is bit-identical either way.
type SearchOptions = dse.Options

// SearchResult is a DSE outcome (cloud, Pareto front, best point).
type SearchResult = dse.Result

// DefaultSearchOptions returns an exhaustive search with default
// scheduling.
func DefaultSearchOptions() SearchOptions { return dse.DefaultOptions() }

// Sweeper is a reusable DSE handle: per-worker schedulers, partition
// HDAs and bound memo tables stay warm across Sweep calls, so
// re-running a search (e.g. a fleet probing repartitioning on its
// observed traffic) costs a warm sweep instead of a cold one.
type Sweeper = dse.Sweeper

// NewSweeper builds a reusable sweep handle over one (space, options)
// search configuration.
func NewSweeper(cache *CostCache, space SearchSpace, opts SearchOptions) (*Sweeper, error) {
	return dse.NewSweeper(cache, space, opts)
}

// --- Schedule inspection and export (internal/trace) ---

// Gantt renders a schedule as a text Gantt chart, one lane per
// sub-accelerator.
func Gantt(s *Schedule, width int) string { return trace.Gantt(s, width) }

// InstanceSummary is the per-model-instance completion view of a
// schedule.
type InstanceSummary = trace.InstanceSummary

// ScheduleInstances summarizes per-instance completion times — the
// per-subtask latencies an AR/VR integrator reads off a schedule.
func ScheduleInstances(s *Schedule) []InstanceSummary { return trace.Instances(s) }

// WriteScheduleCSV dumps every assignment of a schedule as CSV.
func WriteScheduleCSV(w io.Writer, s *Schedule) error { return trace.WriteCSV(w, s) }

// WriteScheduleJSON dumps a schedule as indented JSON.
func WriteScheduleJSON(w io.Writer, s *Schedule) error { return trace.WriteJSON(w, s) }

// OccupancySample is one point of the shared-buffer occupancy
// timeline.
type OccupancySample = trace.Sample

// OccupancyTimeline returns the global-buffer occupancy step function
// of a schedule.
func OccupancyTimeline(s *Schedule) []OccupancySample { return trace.OccupancyTimeline(s) }

// --- Online serving (internal/serve, internal/sched incremental) ---

// Online multi-tenant serving over a fixed HDA (cmd/heraldd's core).
type (
	// ServingEngine admits inference requests at runtime, extends the
	// schedule incrementally, and reports latency/SLA statistics.
	ServingEngine = serve.Engine
	// ServingOptions configures a serving engine.
	ServingOptions = serve.Options
	// InferenceRequest is one runtime inference submission.
	InferenceRequest = serve.Request
	// RequestRecord is the engine's per-request placement and
	// latency/SLA record.
	RequestRecord = serve.Record
	// RequestTicket tracks an accepted submission to completion.
	RequestTicket = serve.Ticket
	// ServingStats is the aggregate + per-tenant statistics snapshot.
	ServingStats = serve.Stats
	// TenantStats summarizes one tenant's served traffic.
	TenantStats = serve.TenantStats
)

// RequestStatus is a serving request's lifecycle state.
type RequestStatus = serve.Status

// Request lifecycle statuses. StatusLost marks a request extracted by
// a replica crash (fleet failover re-admits it on a survivor).
// StatusPreempted marks a request checkpointed at a layer boundary and
// re-queued for resumption (elastic serving).
const (
	StatusQueued    = serve.StatusQueued
	StatusDone      = serve.StatusDone
	StatusFailed    = serve.StatusFailed
	StatusLost      = serve.StatusLost
	StatusPreempted = serve.StatusPreempted
)

// Incremental scheduling (the serving engine's substrate).
type (
	// IncrementalSchedule extends a committed schedule admission by
	// admission instead of requiring the whole workload up front.
	IncrementalSchedule = sched.Incremental
	// Admission is one instance admitted to an incremental schedule.
	Admission = sched.Admission
	// Placement reports where an admitted instance landed.
	Placement = sched.Placement
	// SchedCheckpoint is the resumable token a layer-boundary
	// preemption returns (IncrementalSchedule.Preempt/Resume).
	SchedCheckpoint = sched.Checkpoint
)

// Streaming arrivals (serving traffic generation).
type (
	// StreamEntry describes one periodic request stream of a model.
	StreamEntry = workload.StreamEntry
	// Arrival is one streamed model-instance request.
	Arrival = workload.Arrival
)

// NewServingEngine starts an online serving engine over a fixed HDA.
func NewServingEngine(cache *CostCache, hda *HDA, opts ServingOptions) (*ServingEngine, error) {
	return serve.New(cache, hda, opts)
}

// DefaultServingOptions returns the serving-engine defaults over
// Herald's standard scheduler configuration.
func DefaultServingOptions() ServingOptions { return serve.DefaultOptions() }

// EngineLoad is a point-in-time serving-engine load probe (pending
// work, committed backlog) for dispatchers and monitoring.
type EngineLoad = serve.Load

// --- Layer-fused segment serving (segment-cut DSE + chained admission) ---

// Segment chains: a model's layers split into contiguous segments,
// each pinned to the sub-accelerator whose dataflow prefers it, served
// as a precedence chain so consecutive requests pipeline across
// sub-accelerators.
type (
	// SegmentPlan is one model's winning fusion cut on a concrete HDA
	// (ordered segments + pipeline period / chain latency bounds).
	SegmentPlan = dse.SegmentPlan
	// PlanSegment is one contiguous layer range of a plan pinned to
	// one sub-accelerator.
	PlanSegment = dse.Segment
	// SegmentRecord is one segment's slice of a fused request record.
	SegmentRecord = serve.SegmentRecord
	// SegmentServingStats counts fused requests and their segments at
	// both granularities, plus pipeline-overlap cycle metrics.
	SegmentServingStats = serve.SegmentStats
)

// PlanSegments searches model m's fusion cuts on HDA h and returns the
// plan with at most maxSegments segments minimizing the pipeline
// period (ties: fewer segments, then smaller chain latency).
// maxSegments <= 1, or a single-sub HDA, yields the unfused
// single-segment plan. Feed the winning plans to
// ServingOptions.Plans (engine-level fusion within one HDA) or
// FleetOptions.Plans (fleet-level fusion with cross-replica routing).
func PlanSegments(cache *CostCache, h *HDA, m *Model, o SearchObjective, maxSegments int) (SegmentPlan, error) {
	return dse.PlanSegments(cache, h, m, o, maxSegments)
}

// --- Fleet serving (internal/fleet) ---

// Multi-HDA fleet serving: N replica engines behind a routing policy.
type (
	// Fleet dispatches inference requests across replica serving
	// engines (homogeneous, or heterogeneous from DSE top-K points).
	Fleet = fleet.Fleet
	// FleetOptions configures a fleet (per-replica engine options +
	// routing policy).
	FleetOptions = fleet.Options
	// FleetPolicy selects how submissions are routed across replicas.
	FleetPolicy = fleet.Policy
	// FleetStats is the fleet-wide statistics snapshot (per-replica
	// breakdown + tenants merged across replicas).
	FleetStats = fleet.Stats
	// FleetReplicaStats is one replica's slice of the fleet stats.
	FleetReplicaStats = fleet.ReplicaStats
	// FleetTicket tracks a dispatched submission and its replica.
	FleetTicket = fleet.Ticket
)

// Fleet routing policies.
const (
	RouteRoundRobin       = fleet.RoundRobin
	RouteLeastOutstanding = fleet.LeastOutstanding
	RouteCostAware        = fleet.CostAware
)

// NewFleet starts one serving engine per HDA (heterogeneous fleets
// pass dse TopK points), all sharing one cost cache.
func NewFleet(cache *CostCache, hdas []*HDA, opts FleetOptions) (*Fleet, error) {
	return fleet.New(cache, hdas, opts)
}

// NewReplicatedFleet starts a homogeneous fleet of n replicas of one
// HDA.
func NewReplicatedFleet(cache *CostCache, hda *HDA, n int, opts FleetOptions) (*Fleet, error) {
	return fleet.Replicated(cache, hda, n, opts)
}

// DefaultFleetOptions returns a cost-aware fleet over the
// serving-engine defaults.
func DefaultFleetOptions() FleetOptions { return fleet.DefaultOptions() }

// ParseFleetPolicy resolves a routing policy by name (round-robin,
// least-outstanding, cost-aware).
func ParseFleetPolicy(name string) (FleetPolicy, error) { return fleet.ParsePolicy(name) }

// --- Dynamic repartitioning (internal/fleet's Controller) ---

// Repartitioning: the controller that acts on the Resweep probe.
type (
	// RepartitionController periodically re-sweeps the partition
	// search on the fleet's observed tenant mix and live-migrates the
	// fleet (spawn → drain → hand over) when the winner beats the
	// serving partition by a threshold, with hysteresis and cooldown.
	RepartitionController = fleet.Controller
	// RepartitionOptions tunes the controller state machine
	// (threshold, confirmation streak, cooldown, replica count).
	RepartitionOptions = fleet.ControllerOptions
	// RepartitionDecision records one controller step.
	RepartitionDecision = fleet.Decision
	// RepartitionStatus is the controller's state snapshot (the
	// GET /v1/fleet/repartition payload).
	RepartitionStatus = fleet.ControllerStatus
	// RepartitionAction is the outcome of one controller step.
	RepartitionAction = fleet.Action
)

// Controller step outcomes.
const (
	RepartitionNoTraffic  = fleet.ActionNoTraffic
	RepartitionHold       = fleet.ActionHold
	RepartitionConfirming = fleet.ActionConfirming
	RepartitionCooldown   = fleet.ActionCooldown
	RepartitionMigrated   = fleet.ActionMigrated
)

// --- Elastic intra-HDA partitioning (internal/fleet's ElasticController) ---

// Elasticity: re-slice sub-accelerators in place instead of migrating.
type (
	// ElasticController prefers the cheap intra-HDA moves — SLA-risk
	// preemption, then PE reassignment at layer boundaries — and only
	// escalates to a full migration when the sweep winner stays
	// structurally out of reach of re-slicing.
	ElasticController = fleet.ElasticController
	// ElasticOptions tunes the elastic controller (reassign threshold,
	// PE quantum, escalation budget, SLA-risk preemption trigger).
	ElasticOptions = fleet.ElasticOptions
	// ElasticDecision records one elastic-controller step.
	ElasticDecision = fleet.ElasticDecision
	// ElasticControllerStatus is the controller's state snapshot.
	ElasticControllerStatus = fleet.ElasticStatus
	// ElasticAction is the outcome of one elastic-controller step.
	ElasticAction = fleet.ElasticAction
)

// Elastic controller step outcomes.
const (
	ElasticNoTraffic  = fleet.ElasticNoTraffic
	ElasticHold       = fleet.ElasticHold
	ElasticReassigned = fleet.ElasticReassigned
	ElasticPreempted  = fleet.ElasticPreempted
	ElasticMigrated   = fleet.ElasticMigrated
)

// NewElasticController attaches an elastic (intra-HDA) controller to a
// fleet. A sweeper is optional: without one the controller reassigns
// and preempts but never escalates to a migration; the SLA-risk
// preemption trigger additionally needs ServingOptions.Elastic on the
// fleet's engines.
func NewElasticController(f *Fleet, opts ElasticOptions) (*ElasticController, error) {
	return fleet.NewElasticController(f, opts)
}

// Fault tolerance (see internal/fleet's fault layer).
type (
	// FaultPlan is a deterministic, cycle-scheduled fault schedule
	// (FleetOptions.Faults) — crashes, stalls, admission-failure
	// bursts, recoveries — replayable alongside a fixed arrival trace.
	FaultPlan = fleet.FaultPlan
	// FaultEvent is one cycle-scheduled fault against one replica.
	FaultEvent = fleet.FaultEvent
	// FaultKind enumerates the injectable fault events.
	FaultKind = fleet.FaultKind
	// FleetHealthOptions tunes failure detection (circuit breaker,
	// stall detection), failover attempt budgets and overload
	// shedding (FleetOptions.Health).
	FleetHealthOptions = fleet.HealthOptions
	// FleetHealthReport is the GET /v1/fleet/health payload.
	FleetHealthReport = fleet.HealthReport
	// FaultDecision is one entry of the fleet's replayable
	// fault-handling decision log.
	FaultDecision = fleet.FaultDecision
	// ShedError rejects an arrival the fleet's admission controller
	// shed (HTTP 429 + Retry-After).
	ShedError = fleet.ShedError
)

// Injectable fault kinds.
const (
	FaultCrash     = fleet.FaultCrash
	FaultStall     = fleet.FaultStall
	FaultAdmitFail = fleet.FaultAdmitFail
	FaultRecover   = fleet.FaultRecover
)

// NewFaultPlan validates fault events and returns a plan with them
// stably sorted by cycle.
func NewFaultPlan(events []FaultEvent) (*FaultPlan, error) { return fleet.NewFaultPlan(events) }

// ParseFaultPlan parses the "cycle:replica:kind[:arg],..." fault-plan
// syntax (kinds: crash, stall:factor, admit-fail:count, recover).
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fleet.ParseFaultPlan(spec) }

// NewRepartitionController attaches a dynamic-repartitioning
// controller to a fleet built with FleetOptions.Sweeper. Drive it
// with Step (deterministic replay) or Run (daemon ticker loop).
func NewRepartitionController(f *Fleet, opts RepartitionOptions) (*RepartitionController, error) {
	return fleet.NewController(f, opts)
}

// ExportFaultPlan reconstructs an injectable FaultPlan from a fault
// decision log (GET /v1/fleet/decisions) — the export-an-incident
// path: capture the trace, export the decisions, re-run both offline.
func ExportFaultPlan(decs []FaultDecision) (*FaultPlan, error) { return fleet.ExportFaultPlan(decs) }

// FormatFaultPlan renders a plan in ParseFaultPlan's syntax
// ("cycle:replica:kind[:arg],..."), round-tripping exactly.
func FormatFaultPlan(p *FaultPlan) string { return fleet.FormatFaultPlan(p) }

// --- Trace capture, scenario generation, deterministic replay ---

type (
	// TraceEntry is one captured request in a versioned JSONL trace.
	TraceEntry = capture.Entry
	// TraceRecorder streams accepted submissions to a trace writer
	// (wire it to ServingOptions.OnAccept or FleetOptions.OnAccept).
	TraceRecorder = capture.Recorder
	// Trace is a fully-read request trace (header note + entries).
	Trace = capture.Trace
	// ScenarioSpec declares a seeded synthetic traffic scenario
	// (internal/scenario): Zipf tenant skew, diurnal ramps, flash
	// crowds, correlated bursts, flip-flop mixes. Kind is one of the
	// Scenario* constants below.
	ScenarioSpec = scenario.Spec
	// ReplayOptions configures one deterministic replay run.
	ReplayOptions = replay.Options
	// ReplayDigest is a replay's deterministic outcome: counters,
	// conservation, per-tenant percentiles, fault and repartition
	// decisions. Byte-compare Canonical() renderings for equality.
	ReplayDigest = replay.Digest
)

// Scenario generator families.
const (
	ScenarioSmooth     = scenario.Smooth
	ScenarioZipf       = scenario.Zipf
	ScenarioDiurnal    = scenario.Diurnal
	ScenarioFlash      = scenario.Flash
	ScenarioCorrelated = scenario.Correlated
	ScenarioFlipFlop   = scenario.FlipFlop
)

// NewTraceRecorder starts a capture stream on w: a version header now,
// one JSONL entry per recorded request.
func NewTraceRecorder(w io.Writer, note string) (*TraceRecorder, error) {
	return capture.NewRecorder(w, note)
}

// ReadTrace parses a captured or generated trace stream.
func ReadTrace(r io.Reader) (*Trace, error) { return capture.Read(r) }

// WriteTrace renders entries in the capture wire format, so generated
// and captured traces are byte-compatible.
func WriteTrace(w io.Writer, note string, entries []TraceEntry) error {
	return capture.Write(w, note, entries)
}

// GenerateScenario renders a scenario spec into a sorted, seeded,
// byte-stable arrival trace.
func GenerateScenario(spec ScenarioSpec) ([]TraceEntry, error) { return scenario.Generate(spec) }

// ParseScenarioSpec decodes a scenario-spec JSON document (unknown
// fields rejected; see internal/scenario for the knobs).
func ParseScenarioSpec(r io.Reader) (ScenarioSpec, error) { return scenario.ParseSpec(r) }

// Replay re-runs a trace against a candidate fleet configuration under
// the windowed deterministic protocol and returns its digest. See
// internal/replay and cmd/heraldplay.
func Replay(ctx context.Context, cache *CostCache, hdas []*HDA, tr *Trace, o ReplayOptions) (*ReplayDigest, error) {
	return replay.Run(ctx, cache, hdas, tr, o)
}

// DiffDigests compares two digest JSON documents leaf by leaf,
// returning one "path: a -> b" line per difference.
func DiffDigests(a, b []byte) ([]string, error) { return replay.DiffJSON(a, b) }

// DesignFromSearch converts a search outcome into the Fig. 10 design
// view — the plumbing callers use to render what a probe or
// controller picked (expected latency/energy/EDP of the winning
// partition) without re-running anything.
func DesignFromSearch(res *SearchResult) *Design { return core.DesignFromResult(res) }

// Stream merges periodic per-model request streams (with seeded
// jitter) into one cycle-ordered arrival sequence.
func Stream(entries []StreamEntry, seed int64) ([]Arrival, error) {
	return workload.Stream(entries, seed)
}

// StreamWorkload converts an arrival stream into a schedulable
// workload (every arrival becomes an instance with its arrival cycle).
func StreamWorkload(name string, arrivals []Arrival) (*Workload, error) {
	return workload.ToWorkload(name, arrivals)
}

// --- Cost-model validation (internal/refsim) ---

// SimResult is a tile-level reference-simulation measurement.
type SimResult = refsim.Result

// SimulateLayer walks the tiled loop nest of a (layer, style, array)
// mapping cycle group by cycle group — the reference the analytical
// model is validated against.
func SimulateLayer(style Style, l *Layer, pes int) SimResult {
	return refsim.Simulate(style, l, pes)
}
