// Chaos harness: drive a replicated serving fleet through a seeded
// fault schedule — a stall, an admission-failure burst, a replica
// crash with requests queued on it, and a recovery — and assert the
// fault-tolerance contract end to end:
//
//  1. conservation: every admitted request is served exactly once or
//     terminally failed; nothing is lost or double-served across the
//     crash and the failovers;
//  2. bounded degradation: the steady tenant's p99 latency under
//     chaos stays within a generous factor of the fault-free control
//     run (survivors absorb the failed-over work, they do not melt);
//  3. determinism: the same trace plus the same FaultPlan replays to
//     an identical fault-handling decision log and identical final
//     counters, run to run.
//
// The harness exits non-zero on any violation, so CI can gate on it
// (make chaos). It imports the internal packages rather than the
// facade because deterministic crash staging needs a replica's engine
// paused — an instrument the public API deliberately does not expose.
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/maestro"
	"repro/internal/serve"
)

const (
	stallCycle   = 2_000_000
	admitCycle   = 4_000_000
	crashCycle   = 8_000_000
	recoverCycle = 12_000_000
	phaseGap     = 400_000 // arrival spacing of the steady trace
)

func main() {
	// Fault-free control run: the baseline the chaos run's latency
	// inflation is measured against.
	control := run(nil)
	fmt.Printf("control: %d completed, steady-tenant p99 %.2f ms\n",
		control.stats.Completed, ms(control.p99))

	plan, err := fleet.NewFaultPlan([]fleet.FaultEvent{
		{Cycle: stallCycle, Replica: 2, Kind: fleet.FaultStall, Factor: 8},
		{Cycle: admitCycle, Replica: 1, Kind: fleet.FaultAdmitFail, Count: 4},
		{Cycle: crashCycle, Replica: 0, Kind: fleet.FaultCrash},
		{Cycle: recoverCycle, Replica: 0, Kind: fleet.FaultRecover},
	})
	if err != nil {
		log.Fatal(err)
	}

	first := run(plan)
	second := run(plan)

	fmt.Printf("\nchaos:   %d completed, %d lost to the crash, %d failovers, "+
		"%d breaker trips, %d recovery; steady-tenant p99 %.2f ms\n",
		first.stats.Completed, first.stats.Lost, first.stats.Failovers,
		first.stats.BreakerTrips, first.stats.Recoveries, ms(first.p99))
	fmt.Println("\nfault-handling decision log:")
	for _, d := range first.decisions {
		fmt.Printf("  #%d cycle %8d %-14s replica %2d  %s\n", d.Seq, d.Cycle, d.Kind, d.Replica, d.Detail)
	}

	// 1. Conservation under chaos (run() already checked the per-ticket
	// outcomes; this is the aggregate identity).
	st := first.stats
	if st.Submitted != st.Completed+st.Failed || st.Pending != 0 {
		log.Fatalf("CONSERVATION VIOLATED: submitted %d != completed %d + failed %d (pending %d)",
			st.Submitted, st.Completed, st.Failed, st.Pending)
	}
	if st.Lost == 0 || st.Failovers != st.Lost || st.Crashes != 1 || st.Recoveries != 1 {
		log.Fatalf("fault counters off: lost %d failovers %d crashes %d recoveries %d",
			st.Lost, st.Failovers, st.Crashes, st.Recoveries)
	}

	// 2. Bounded survivor degradation: a 10x envelope is deliberately
	// loose — the point is "degraded, not melted down".
	if maxP99 := 10 * control.p99; first.p99 > maxP99 {
		log.Fatalf("DEGRADATION UNBOUNDED: steady p99 %.2f ms exceeds 10x the fault-free %.2f ms",
			ms(first.p99), ms(control.p99))
	}

	// 3. Bit-identical replay: decisions and final counters.
	if !reflect.DeepEqual(first.decisions, second.decisions) {
		log.Fatalf("REPLAY DIVERGED: decision logs differ\n first: %+v\nsecond: %+v",
			first.decisions, second.decisions)
	}
	if first.counters() != second.counters() {
		log.Fatalf("REPLAY DIVERGED: final counters differ\n first: %+v\nsecond: %+v",
			first.counters(), second.counters())
	}

	fmt.Printf("\nOK: conservation held across a mid-flight crash (%d failovers), "+
		"steady p99 inflated %.1fx (bound 10x), and the decision log replayed bit-identically\n",
		st.Failovers, float64(first.p99)/float64(control.p99))
}

type result struct {
	stats     fleet.Stats
	decisions []fleet.FaultDecision
	p99       int64
}

// counters projects the deterministic slice of the final statistics —
// the part a replay must reproduce exactly. (Latency percentiles are
// simulated-time quantities but depend on engine batch composition,
// which is wall-time sensitive; they are bounded, not replayed.)
func (r result) counters() [8]int64 {
	return [8]int64{r.stats.Submitted, r.stats.Completed, r.stats.Failed, r.stats.Lost,
		r.stats.Failovers, r.stats.Crashes, r.stats.Recoveries, r.stats.BreakerTrips}
}

// run drives the fixed two-phase trace through a fresh 3-replica
// cost-aware fleet under the given fault plan (nil = control) and
// checks every per-ticket outcome.
func run(plan *fleet.FaultPlan) result {
	cache := maestro.NewCache(energy.Default28nm())
	hda, err := accel.New("chaos", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := fleet.DefaultOptions()
	opts.Policy = fleet.CostAware
	opts.Faults = plan
	f, err := fleet.Replicated(cache, hda, 3, opts)
	if err != nil {
		log.Fatal(err)
	}

	var tickets []*fleet.Ticket
	submit := func(tenant, model string, arrival int64) {
		t, err := f.Submit(serve.Request{
			Tenant: tenant, Model: model, ArrivalCycle: arrival, SLACycles: 1 << 50,
		})
		if err != nil {
			log.Fatalf("submit %s %s @%d: %v", tenant, model, arrival, err)
		}
		tickets = append(tickets, t)
	}

	// Phase A: steady AR/VR-style mix across the healthy fleet. The
	// arrivals walk the fault clock through the stall and the
	// admission-failure burst.
	for i := 0; i < 16; i++ {
		submit("steady", "brq-handpose", int64(i)*phaseGap)
		if i%2 == 0 {
			submit("steady", "mobilenetv1", int64(i)*phaseGap+phaseGap/2)
		}
	}
	// Let phase A finish before staging the crash: the doomed set must
	// be exactly the burst requests the dispatcher routes to replica 0,
	// not whatever slice of phase A its engine happened not to have
	// scheduled yet (that would be wall-clock dependent and break the
	// bit-identical replay).
	for _, t := range tickets {
		if _, err := t.Wait(context.Background()); err != nil {
			log.Fatal(err)
		}
	}

	// Crash staging: pause replica 0's engine so the burst requests
	// routed to it stay queued — the deterministic doomed set the
	// crash will extract and fail over.
	if plan != nil {
		if err := f.PauseReplica(0); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		submit("burst", "mobilenetv1", crashCycle-phaseGap+int64(i))
	}

	// The trigger arrival fires the crash: replica 0 dies with its
	// queue, survivors absorb the failovers. A later arrival fires the
	// recovery, and phase B spreads over the healed fleet.
	for i := 0; i < 16; i++ {
		submit("steady", "brq-handpose", crashCycle+int64(i)*phaseGap)
	}

	for i, t := range tickets {
		rec, err := t.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if rec.Status != serve.StatusDone {
			log.Fatalf("request %d (%s): %s — a fault leaked to a client", i, rec.Tenant, rec.Err)
		}
	}

	st, err := f.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	var p99 int64
	for _, ts := range st.Tenants {
		if ts.Tenant == "steady" {
			p99 = ts.P99LatencyCycles
		}
	}
	if p99 <= 0 {
		log.Fatal("no steady-tenant p99 recorded")
	}
	return result{stats: st, decisions: f.Decisions(), p99: p99}
}

// ms converts cycles to milliseconds at the 1 GHz reference clock.
func ms(c int64) float64 { return float64(c) / 1e6 }
