// Replay drill: run the committed adversarial scenario corpus
// (testdata/scenarios) through the deterministic replay harness and
// assert the offline-A/B contract end to end:
//
//  1. corpus reproducibility: regenerating every committed spec
//     renders the committed trace byte for byte (the corpus never
//     silently drifts from the generator);
//  2. determinism: every replay — fault-free, under a fault plan, and
//     under a windowed repartitioning controller — renders a
//     byte-identical digest twice, including identical fault-handling
//     decision logs;
//  3. conservation: every accepted request completes or terminally
//     fails, nothing pending after the drain, under every scenario
//     and fault schedule;
//  4. bounded degradation: the steady probe tenant's p99 latency
//     under each hostile scenario (and under faults) stays within a
//     generous envelope of the smooth-control run — hostile tenants
//     and injected faults must not starve the well-behaved tenant
//     without bound.
//
// The drill exits non-zero on any violation, so CI gates on it
// (make replay).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	herald "repro"
)

// p99Envelope bounds the steady tenant's p99 under hostility as a
// multiple of the smooth-control p99. The control run serves the
// steady probes alone, so its p99 is nearly pure execution; under a
// flash crowd or a replica crash the probe rightly queues — the
// envelope only asserts the degradation is bounded, not small (the
// corpus currently peaks at ~11x under flip-flop + faults).
const p99Envelope = 25

// window paces hostile replays: admitting the trace in quiesce windows
// of this many entries keeps the crowd from all queueing ahead of the
// steady probes at once, mirroring live arrival pacing.
const window = 16

var hostile = []string{"zipf", "diurnal", "flash", "correlated", "flipflop"}

func main() {
	log.SetFlags(0)
	dir := filepath.Join("testdata", "scenarios")

	// Gate 1: the committed corpus regenerates byte for byte.
	for _, name := range append([]string{"control"}, hostile...) {
		if err := checkCorpus(dir, name); err != nil {
			log.Fatalf("FAIL corpus: %v", err)
		}
	}
	log.Printf("corpus reproducible: %d committed traces regenerate byte-identically", 1+len(hostile))

	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	hda, err := herald.NewHDA("replay-drill", herald.Edge, []herald.Partition{
		{Style: herald.NVDLA, PEs: 512, BWGBps: 8},
		{Style: herald.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	hdas := []*herald.HDA{hda, hda, hda}

	// Gate 2 baseline: the smooth control run (steady tenant alone).
	control, _ := mustReplay(cache, hdas, load(dir, "control"), herald.ReplayOptions{
		Fleet: fleetOptions(), Window: window,
	})
	controlP99 := steadyP99(control)
	if controlP99 <= 0 {
		log.Fatal("FAIL control: steady tenant has no p99 reading")
	}
	log.Printf("control: steady p99 %d cycles", controlP99)

	// The fault schedule every hostile trace also replays under,
	// scaled to the scenario horizon: a stall, an admission-failure
	// burst, a crash with work queued, a recovery.
	h := int64(12_000_000)
	plan, err := herald.ParseFaultPlan(fmt.Sprintf(
		"%d:1:stall:4,%d:2:admit-fail:3,%d:1:crash,%d:1:recover",
		h/5, 2*h/5, h/2, 4*h/5))
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range hostile {
		tr := load(dir, name)

		// Fault-free: deterministic, conserving, bounded.
		d1, b1 := mustReplay(cache, hdas, tr, herald.ReplayOptions{Fleet: fleetOptions(), Window: window})
		_, b2 := mustReplay(cache, hdas, tr, herald.ReplayOptions{Fleet: fleetOptions(), Window: window})
		if !bytes.Equal(b1, b2) {
			log.Fatalf("FAIL %s: two fault-free replays rendered different digests:\n%s", name, diff(b1, b2))
		}
		assertConservation(name, d1)
		assertEnvelope(name, d1, controlP99)

		// Faulted: deterministic down to the decision log, conserving,
		// bounded.
		fo := func() herald.ReplayOptions {
			o := herald.ReplayOptions{Fleet: fleetOptions(), Window: window}
			o.Fleet.Faults = plan
			return o
		}
		f1, fb1 := mustReplay(cache, hdas, tr, fo())
		f2, fb2 := mustReplay(cache, hdas, tr, fo())
		if !bytes.Equal(fb1, fb2) {
			log.Fatalf("FAIL %s+faults: two faulted replays rendered different digests:\n%s", name, diff(fb1, fb2))
		}
		if !reflect.DeepEqual(f1.FaultDecisions, f2.FaultDecisions) {
			log.Fatalf("FAIL %s+faults: fault-handling decision logs diverge", name)
		}
		if len(f1.FaultDecisions) == 0 {
			log.Fatalf("FAIL %s+faults: fault plan fired no decisions", name)
		}
		assertConservation(name+"+faults", f1)
		assertEnvelope(name+"+faults", f1, controlP99)
		log.Printf("%s: ok (fault-free %d completed; faulted %d completed, %d failovers, %d decisions, steady p99 %dx control)",
			name, d1.Counters.Completed, f1.Counters.Completed, f1.Counters.Failovers,
			len(f1.FaultDecisions), (steadyP99(f1)+controlP99-1)/controlP99)
	}

	// Gate on the repartitioning path too: a windowed flip-flop replay
	// with a live controller reaches the same decisions and digest
	// twice.
	ro := func() herald.ReplayOptions {
		o := herald.ReplayOptions{Fleet: fleetOptions(), Window: window}
		sw, err := herald.NewSweeper(cache, herald.SearchSpace{
			Class: herald.Edge, Styles: herald.MaelstromStyles(), PEUnits: 4, BWUnits: 2,
		}, sweepOptions())
		if err != nil {
			log.Fatal(err)
		}
		o.Fleet.Sweeper = sw
		o.Fleet.MixHalfLife = 64
		o.Controller = &herald.RepartitionOptions{Threshold: 0.02, Confirm: 2, Cooldown: 2}
		return o
	}
	tr := load(dir, "flipflop")
	r1, rb1 := mustReplay(cache, hdas, tr, ro())
	_, rb2 := mustReplay(cache, hdas, tr, ro())
	if !bytes.Equal(rb1, rb2) {
		log.Fatalf("FAIL flipflop+repartition: digests diverge:\n%s", diff(rb1, rb2))
	}
	if len(r1.Repartitions) == 0 {
		log.Fatal("FAIL flipflop+repartition: controller never stepped")
	}
	assertConservation("flipflop+repartition", r1)
	log.Printf("flipflop+repartition: ok (%d controller steps, final generation %d)",
		len(r1.Repartitions), r1.Counters.Generation)

	log.Printf("replay drill PASS")
}

// checkCorpus regenerates one committed spec and byte-compares the
// rendered trace against the committed one.
func checkCorpus(dir, name string) error {
	sf, err := os.Open(filepath.Join(dir, name+".json"))
	if err != nil {
		return err
	}
	defer sf.Close()
	spec, err := herald.ParseScenarioSpec(sf)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	entries, err := herald.GenerateScenario(spec)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	var got strings.Builder
	if err := herald.WriteTrace(&got, spec.Note(), entries); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	want, err := os.ReadFile(filepath.Join(dir, name+".trace.jsonl"))
	if err != nil {
		return err
	}
	if got.String() != string(want) {
		return fmt.Errorf("%s: regenerated trace differs from the committed one (regenerate with heraldplay -gen and commit, or fix the generator)", name)
	}
	return nil
}

func fleetOptions() herald.FleetOptions {
	o := herald.DefaultFleetOptions()
	o.Serve.MaxQueue = 4096
	return o
}

func sweepOptions() herald.SearchOptions {
	o := herald.DefaultSearchOptions()
	o.Objective = herald.ObjectiveEDP
	o.BestOnly = true
	o.Prune = true
	return o
}

func load(dir, name string) *herald.Trace {
	f, err := os.Open(filepath.Join(dir, name+".trace.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := herald.ReadTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func mustReplay(cache *herald.CostCache, hdas []*herald.HDA, tr *herald.Trace, o herald.ReplayOptions) (*herald.ReplayDigest, []byte) {
	d, err := herald.Replay(context.Background(), cache, hdas, tr, o)
	if err != nil {
		log.Fatal(err)
	}
	b, err := d.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	return d, b
}

func assertConservation(name string, d *herald.ReplayDigest) {
	if !d.Conservation.Holds {
		log.Fatalf("FAIL %s: conservation violated: %+v", name, d.Conservation)
	}
}

func assertEnvelope(name string, d *herald.ReplayDigest, controlP99 int64) {
	p99 := steadyP99(d)
	if p99 <= 0 {
		log.Fatalf("FAIL %s: steady tenant has no p99 reading", name)
	}
	if p99 > p99Envelope*controlP99 {
		log.Fatalf("FAIL %s: steady p99 %d cycles breaches the envelope (%dx control %d)",
			name, p99, p99Envelope, controlP99)
	}
}

func steadyP99(d *herald.ReplayDigest) int64 {
	for _, t := range d.Tenants {
		if t.Tenant == "steady" {
			return t.P99LatencyCycles
		}
	}
	return 0
}

func diff(a, b []byte) string {
	lines, err := herald.DiffDigests(a, b)
	if err != nil {
		return err.Error()
	}
	if len(lines) > 20 {
		lines = lines[:20]
	}
	return strings.Join(lines, "\n")
}
