// Fleet serving: scale the online serving tier beyond one accelerator.
// A deploy-time DSE fixes the edge-class Maelstrom partitioning, then
// three fleets serve the same skewed request mix:
//
//  1. four homogeneous replicas with round-robin dispatch,
//  2. four homogeneous replicas with cost-aware ETA dispatch,
//  3. a heterogeneous fleet over the top-2 DSE design points.
//
// The mix alternates a heavy model (unet) and a light one
// (brq-handpose) 1:1 — the aliasing pattern that defeats round-robin
// on even-sized fleets: every heavy request lands on the same
// replicas while the cost-aware dispatcher balances actual work. The
// run prints each fleet's per-replica dispatch counts, the per-tenant
// p99 latencies, and the throughput scaling over a single engine.
package main

import (
	"context"
	"fmt"
	"log"

	herald "repro"
)

const pairs = 30 // heavy+light request pairs per fleet

func main() {
	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	sp := herald.SearchSpace{
		Class:   herald.Edge,
		Styles:  herald.MaelstromStyles(),
		PEUnits: 8,
		BWUnits: 4,
	}
	opts := herald.DefaultSearchOptions()
	opts.Objective = herald.ObjectiveLatency
	res, err := herald.Search(cache, sp, herald.ARVRA(), opts)
	if err != nil {
		log.Fatal(err)
	}
	best := res.Best.HDA
	fmt.Printf("deploy-time DSE: %d points, best %v\n\n", len(res.Points), best)

	// Baseline: the same mix through a single engine.
	single := drive(mustFleet(herald.NewReplicatedFleet(cache, best, 1, fleetOpts(herald.RouteRoundRobin))))

	fmt.Println("=== 4 homogeneous replicas, round-robin dispatch ===")
	rr := drive(mustFleet(herald.NewReplicatedFleet(cache, best, 4, fleetOpts(herald.RouteRoundRobin))))
	report(rr, single)

	fmt.Println("=== 4 homogeneous replicas, cost-aware ETA dispatch ===")
	ca := drive(mustFleet(herald.NewReplicatedFleet(cache, best, 4, fleetOpts(herald.RouteCostAware))))
	report(ca, single)

	fmt.Println("=== heterogeneous fleet: top-2 DSE design points ===")
	top := res.TopK(herald.ObjectiveLatency, 2)
	hetero := drive(mustFleet(herald.NewFleet(cache,
		[]*herald.HDA{top[0].HDA, top[1].HDA}, fleetOpts(herald.RouteCostAware))))
	report(hetero, single)

	p99 := func(st herald.FleetStats, tenant string) int64 {
		for _, ts := range st.Tenants {
			if ts.Tenant == tenant {
				return ts.P99LatencyCycles
			}
		}
		return 0
	}
	fmt.Printf("cost-aware vs round-robin heavy-tenant p99: %.2f ms vs %.2f ms (%.1fx better)\n",
		ms(p99(ca, "render")), ms(p99(rr, "render")),
		float64(p99(rr, "render"))/float64(p99(ca, "render")))
	fmt.Printf("4-replica throughput scaling over one engine: %.2fx (round-robin), %.2fx (cost-aware)\n",
		rr.SimThroughputRPS/single.SimThroughputRPS, ca.SimThroughputRPS/single.SimThroughputRPS)
}

func fleetOpts(p herald.FleetPolicy) herald.FleetOptions {
	o := herald.DefaultFleetOptions()
	o.Policy = p
	return o
}

func mustFleet(f *herald.Fleet, err error) *herald.Fleet {
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// drive submits the skewed mix sequentially (dispatch decisions are
// deterministic for a fixed sequence), waits for every completion,
// and drains the fleet.
func drive(f *herald.Fleet) herald.FleetStats {
	var tickets []*herald.FleetTicket
	submit := func(tenant, model string) {
		t, err := f.Submit(herald.InferenceRequest{
			Tenant: tenant, Model: model,
			SLACycles: 500_000_000, ArrivalCycle: 0,
		})
		if err != nil {
			log.Fatalf("%s %s: %v", tenant, model, err)
		}
		tickets = append(tickets, t)
	}
	for i := 0; i < pairs; i++ {
		submit("render", "unet")        // heavy
		submit("track", "brq-handpose") // light
	}
	for _, t := range tickets {
		rec, err := t.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if rec.Status != herald.StatusDone {
			log.Fatalf("request %d failed: %s", rec.ID, rec.Err)
		}
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func report(st, single herald.FleetStats) {
	fmt.Printf("served %d requests at %.1f simulated req/s (%.2fx one engine)\n",
		st.Completed, st.SimThroughputRPS, st.SimThroughputRPS/single.SimThroughputRPS)
	for _, rs := range st.PerReplica {
		fmt.Printf("  replica %d %-28s dispatched %2d, busy-horizon %6.2f ms, makespan %6.2f ms\n",
			rs.Replica, rs.HDA, rs.Dispatched, ms(rs.HorizonCycles), ms(rs.Engine.MakespanCycles))
	}
	fmt.Println("  tenant     done   p50        p95        p99")
	for _, ts := range st.Tenants {
		fmt.Printf("  %-9s %5d  %7.2fms  %7.2fms  %7.2fms\n",
			ts.Tenant, ts.Completed, ms(ts.P50LatencyCycles), ms(ts.P95LatencyCycles), ms(ts.P99LatencyCycles))
	}
	fmt.Println()
}

// ms converts cycles to milliseconds at the 1 GHz reference clock.
func ms(c int64) float64 { return float64(c) / 1e6 }
