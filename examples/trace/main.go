// Schedule tracing and QoS priorities: visualize where every layer of
// a multi-DNN workload runs on an HDA (the Fig. 7 view), inspect
// per-subtask completion times, and pull a latency-critical subtask
// forward with the scheduler's priority extension.
package main

import (
	"fmt"
	"log"
	"os"

	herald "repro"
)

func main() {
	// The Table V edge Maelstrom partition.
	hda, err := herald.NewHDA("maelstrom-edge", herald.Edge, []herald.Partition{
		{Style: herald.NVDLA, PEs: 128, BWGBps: 4},
		{Style: herald.ShiDiannao, PEs: 896, BWGBps: 12},
	})
	if err != nil {
		log.Fatal(err)
	}

	// An AR frame's worth of subtasks: hand tracking (UNet), object
	// detection (MobileNetV2 x2), hand pose (Br-Q HandposeNet).
	w, err := herald.NewWorkload("ar-frame", []herald.WorkloadEntry{
		{Model: "unet", Batches: 1},
		{Model: "mobilenetv2", Batches: 2},
		{Model: "brq-handpose", Batches: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	cache := herald.NewCostCache(herald.DefaultEnergyTable())

	schedule := func(name string, opts herald.SchedOptions) *herald.Schedule {
		s, err := herald.NewScheduler(cache, opts)
		if err != nil {
			log.Fatal(err)
		}
		sch, err := s.Schedule(hda, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", name)
		fmt.Print(herald.Gantt(sch, 100))
		fmt.Println("per-subtask completion:")
		for _, sum := range herald.ScheduleInstances(sch) {
			fmt.Printf("  %-16s finished at %8.2f ms (%d layers, %.1f mJ)\n",
				sum.Instance, float64(sum.FinishedAt)/1e6, sum.Layers, sum.EnergyMJ)
		}
		fmt.Println()
		return sch
	}

	sch := schedule("default schedule", herald.DefaultSchedOptions())

	// Hand pose drives the UI: make it the most urgent subtask.
	qos := herald.DefaultSchedOptions()
	qos.Priorities = []int{1, 1, 1, 10} // unet, mbv2#1, mbv2#2, handpose
	schedule("handpose prioritized", qos)

	// Export the default schedule for external analysis.
	f, err := os.CreateTemp("", "herald-schedule-*.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := herald.WriteScheduleCSV(f, sch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule CSV written to %s (%d assignments)\n", f.Name(), len(sch.Assignments))
}
