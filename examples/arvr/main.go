// AR/VR co-design: the paper's flagship use case. Herald co-optimizes
// the hardware partitioning of a two-way NVDLA + Shi-diannao HDA
// (Maelstrom) for the AR/VR-A workload on an edge-class accelerator,
// then compares the optimized design against the best fixed dataflow
// accelerator — the §V-B comparison for one scenario.
package main

import (
	"fmt"
	"log"

	herald "repro"
)

func main() {
	w := herald.ARVRA()
	fmt.Printf("workload %s: %d model instances, %d layers, %.1f GMACs\n",
		w.Name, w.NumInstances(), w.TotalLayers(), float64(w.TotalMACs())/1e9)

	h := herald.NewFramework()

	// Design-time mode: explore PE and bandwidth partitions.
	design, err := h.CoDesign(herald.Edge, herald.MaelstromStyles(), w, 16, 8, herald.Exhaustive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHerald explored %d partitionings; optimized Maelstrom:\n  %v\n",
		design.Explored, design.HDA)
	fmt.Printf("  latency %.4f s, energy %.1f mJ, EDP %.4g J*s\n",
		design.LatencySec, design.EnergyMJ, design.EDP)

	// Baselines: the three monolithic FDAs.
	fmt.Println("\nfixed dataflow accelerators on the same budget:")
	var bestFDA herald.Eval
	for _, style := range herald.AllStyles() {
		e, err := h.EvalFDA(herald.Edge, style, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s latency %.4f s, energy %.1f mJ, EDP %.4g\n",
			e.Name, e.LatencySec, e.EnergyMJ, e.EDP)
		if bestFDA.Name == "" || e.EDP < bestFDA.EDP {
			bestFDA = e
		}
	}

	fmt.Printf("\nMaelstrom vs best FDA (%s):\n", bestFDA.Name)
	fmt.Printf("  latency: %.1f%% lower\n", 100*(bestFDA.LatencySec-design.LatencySec)/bestFDA.LatencySec)
	fmt.Printf("  EDP:     %.1f%% lower\n", 100*(bestFDA.EDP-design.EDP)/bestFDA.EDP)

	// Where did the layers go? Per-sub-accelerator utilization.
	fmt.Println("\nschedule utilization:")
	for i, u := range design.Schedule.Utilization() {
		sub := design.HDA.Subs[i]
		fmt.Printf("  %-20s %5.1f%% busy (%d PEs, %g GB/s)\n", sub.Name, 100*u, sub.HW.PEs, sub.HW.BWGBps)
	}
	fmt.Printf("  peak shared-buffer occupancy: %.2f MiB of %d MiB\n",
		float64(design.Schedule.PeakOccupancyBytes())/(1<<20), herald.Edge.GlobalBufBytes>>20)
}
