// Dynamic repartitioning: close the probe→action gap live.
//
// A deploy-time DSE fixes a partitioning for the *expected* workload
// (a mobilenet-style edge mix), and a 2-replica fleet serves on it.
// Then the live traffic shifts to unet — a model whose optimal
// PE split is different — and the repartitioning controller:
//
//  1. holds while the serving partition is still the sweep winner,
//  2. confirms the shifted mix across consecutive probes (hysteresis),
//  3. live-migrates: spawns a new replica generation on the winning
//     partition, drains the old engines (every in-flight request
//     completes), and hands the tenants over,
//  4. refuses to flap back while the new partition serves the new
//     mix.
//
// The run prints each controller decision, the unet burst's p99
// latency before vs. after the migration, and the final fleet
// statistics (generations, retired replicas, conservation of every
// request).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	herald "repro"
)

const (
	replicas  = 2
	burst     = 8 // unet requests per measured burst
	warmupMob = 12
)

func main() {
	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	sp := herald.SearchSpace{
		Class:   herald.Edge,
		Styles:  herald.MaelstromStyles(),
		PEUnits: 4,
		BWUnits: 2,
	}
	dopts := herald.DefaultSearchOptions()
	dopts.BestOnly = true
	dopts.Prune = true

	// Deploy-time: optimize the partitioning for the expected
	// mobilenet-heavy traffic.
	expected, err := herald.SingleDNN("mobilenetv1", 3)
	if err != nil {
		log.Fatal(err)
	}
	boot, err := herald.Search(cache, sp, expected, dopts)
	if err != nil {
		log.Fatal(err)
	}
	design := herald.DesignFromSearch(boot)
	fmt.Printf("deploy-time DSE on %s: best %v (EDP %.4g J*s)\n\n", expected.Name, design.HDA, design.EDP)

	// The serving fleet holds a warm sweeper so the controller's
	// probes cost a warm re-sweep, not a cold search.
	sweeper, err := herald.NewSweeper(cache, sp, dopts)
	if err != nil {
		log.Fatal(err)
	}
	fopts := herald.DefaultFleetOptions()
	fopts.Sweeper = sweeper
	fl, err := herald.NewReplicatedFleet(cache, design.HDA, replicas, fopts)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := herald.NewRepartitionController(fl, herald.RepartitionOptions{
		Threshold: 0.05, // winner must beat the serving partition by 5%
		Confirm:   2,    // ...on two consecutive probes
		Cooldown:  2,    // ...and rest two probes after migrating
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the expected traffic arrives; the controller holds.
	fmt.Println("=== phase 1: mobilenet traffic (matches the deploy-time assumption) ===")
	waitAll(submit(fl, "mobile", "mobilenetv1", warmupMob, 0))
	step(ctrl)

	// Phase 2: the mix shifts — an AR/VR tenant starts streaming unet
	// bursts. Measure the burst's p99 on the old partition, then let
	// the controller confirm the shift and migrate.
	fmt.Println("\n=== phase 2: traffic shifts to unet ===")
	before := waitAll(submit(fl, "arvr", "unet", burst, 2_000_000_000))
	fmt.Printf("unet burst p99 on the old partition: %d cycles\n", p99(before))
	step(ctrl) // confirming (streak 1 of 2)
	d := step(ctrl)
	if d.Action != herald.RepartitionMigrated {
		log.Fatalf("expected a migration, got %+v", d)
	}
	fmt.Printf("fleet is now generation %d on %v\n", fl.Generation(), fl.ActiveHDAs()[0])

	// Phase 3: the same burst shape on the new generation.
	fmt.Println("\n=== phase 3: the same unet burst on the new partition ===")
	after := waitAll(submit(fl, "arvr", "unet", burst, 0))
	fmt.Printf("unet burst p99: %d -> %d cycles (%.1f%% better)\n",
		p99(before), p99(after), 100*(1-float64(p99(after))/float64(p99(before))))
	fmt.Printf("objective on the shifted mix: %.4g -> %.4g (%s, %.1f%% better)\n",
		d.ServingValue, d.WinnerValue, d.Objective, 100*d.Improvement)

	// Anti-flap: the new partition is the winner for the new mix, so
	// further probes hold (and the cooldown would block a flap even if
	// they did not).
	fmt.Println("\n=== anti-flap: further probes on the shifted mix ===")
	for i := 0; i < 2; i++ {
		if d := step(ctrl); d.Action == herald.RepartitionMigrated {
			log.Fatal("controller flapped")
		}
	}

	st, err := fl.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: generation %d, %d migration(s), %d retired replicas; %d submitted = %d completed (nothing lost)\n",
		st.Generation, st.Migrations, st.RetiredReplicas, st.Submitted, st.Completed)
}

// submit sends n explicit-arrival requests of one model (arrivals at
// base, a burst) and returns the tickets.
func submit(fl *herald.Fleet, tenant, model string, n int, base int64) []*herald.FleetTicket {
	out := make([]*herald.FleetTicket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := fl.Submit(herald.InferenceRequest{Tenant: tenant, Model: model, ArrivalCycle: base})
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, tk)
	}
	return out
}

// waitAll waits for every ticket and returns the latencies in cycles.
func waitAll(tickets []*herald.FleetTicket) []int64 {
	lats := make([]int64, 0, len(tickets))
	for _, tk := range tickets {
		rec, err := tk.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if rec.Status != herald.StatusDone {
			log.Fatalf("request %d failed: %s", rec.ID, rec.Err)
		}
		lats = append(lats, rec.LatencyCycles)
	}
	return lats
}

// step runs one controller iteration and prints its decision.
func step(ctrl *herald.RepartitionController) herald.RepartitionDecision {
	d, err := ctrl.Step(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d)
	return d
}

// p99 is the nearest-rank 99th percentile.
func p99(lats []int64) int64 {
	sorted := append([]int64(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}
