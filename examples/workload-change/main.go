// Workload-change robustness (Figure 13): an HDA is fixed silicon —
// what happens when the deployed workload is not the one it was
// optimized for? Herald's compile-time mode re-schedules the new
// workload on the old design, and we measure the penalty against a
// design optimized for the new workload.
package main

import (
	"fmt"
	"log"

	herald "repro"
)

func main() {
	h := herald.NewFramework()
	class := herald.Mobile

	a := herald.ARVRA()
	b := herald.ARVRB()

	// Design for AR/VR-A.
	designA, err := h.CoDesign(class, herald.MaelstromStyles(), a, 16, 8, herald.Exhaustive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HDA-A (optimized for %s): %v\n", a.Name, designA.HDA)
	fmt.Printf("  on %s: latency %.4f s, energy %.1f mJ\n", a.Name, designA.LatencySec, designA.EnergyMJ)

	// The workload changes after deployment: re-schedule only.
	schB, err := h.Compile(designA.HDA, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  on %s (rescheduled): latency %.4f s, energy %.1f mJ\n",
		b.Name, schB.LatencySeconds(1.0), schB.EnergyMJ())

	// Reference: the design Herald would have chosen for AR/VR-B.
	designB, err := h.CoDesign(class, herald.MaelstromStyles(), b, 16, 8, herald.Exhaustive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HDA-B (optimized for %s): %v\n", b.Name, designB.HDA)
	fmt.Printf("  on %s: latency %.4f s, energy %.1f mJ\n", b.Name, designB.LatencySec, designB.EnergyMJ)

	latPen := 100 * (schB.LatencySeconds(1.0) - designB.LatencySec) / designB.LatencySec
	ePen := 100 * (schB.EnergyMJ() - designB.EnergyMJ) / designB.EnergyMJ
	fmt.Printf("\nmismatch penalty of running %s on HDA-A instead of HDA-B:\n", b.Name)
	fmt.Printf("  latency %+.1f%%, energy %+.1f%%\n", latPen, ePen)
	fmt.Println("(the paper reports small penalties on average — HDAs are robust to workload change)")
}
