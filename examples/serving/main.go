// Online multi-tenant serving: the runtime counterpart of the other
// examples. A deploy-time DSE fixes the best edge-class Maelstrom
// partitioning for the AR/VR-A workload, a heraldd-style HTTP server
// fronts the serving engine in-process, and two tenants — an AR/VR
// pipeline and an MLPerf multi-stream client — drive a mixed request
// stream of 120 interleaved inference requests with jittered periodic
// arrivals. Every request comes back with its schedule placement and
// latency; the run ends with the per-tenant SLA/latency summary and
// aggregate throughput a serving operator would watch.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	herald "repro"
)

func main() {
	// Deploy time: fix the serving substrate via DSE (coarse
	// granularity keeps the example snappy).
	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	sp := herald.SearchSpace{
		Class:   herald.Edge,
		Styles:  herald.MaelstromStyles(),
		PEUnits: 8,
		BWUnits: 4,
	}
	opts := herald.DefaultSearchOptions()
	opts.Objective = herald.ObjectiveLatency
	res, err := herald.Search(cache, sp, herald.ARVRA(), opts)
	if err != nil {
		log.Fatal(err)
	}
	hda := res.Best.HDA
	fmt.Printf("deploy-time DSE: %d points, serving on %v\n\n", len(res.Points), hda)

	// Runtime: the serving engine behind heraldd's HTTP API.
	engine, err := herald.NewServingEngine(cache, hda, herald.DefaultServingOptions())
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: engine.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("heraldd serving at %s\n\n", base)

	// Two tenants' traffic as jittered periodic streams.
	arvr, err := herald.Stream([]herald.StreamEntry{
		{Model: "brq-handpose", Count: 24, PeriodCycles: 2_000_000, JitterCycles: 400_000},
		{Model: "mobilenetv2", Count: 20, PeriodCycles: 2_500_000, JitterCycles: 500_000},
		{Model: "unet", Count: 16, PeriodCycles: 3_000_000, OffsetCycles: 1_000_000, JitterCycles: 600_000},
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	mlperf, err := herald.Stream([]herald.StreamEntry{
		{Model: "mobilenetv1", Count: 24, PeriodCycles: 2_200_000, JitterCycles: 300_000},
		{Model: "ssd-mobilenetv1", Count: 20, PeriodCycles: 2_800_000, JitterCycles: 400_000},
		{Model: "resnet50", Count: 16, PeriodCycles: 3_500_000, OffsetCycles: 500_000, JitterCycles: 700_000},
	}, 43)
	if err != nil {
		log.Fatal(err)
	}
	streams := map[string][]herald.Arrival{"arvr": arvr, "mlperf": mlperf}
	total := len(arvr) + len(mlperf)
	fmt.Printf("driving %d interleaved requests from %d tenants...\n", total, len(streams))

	var wg sync.WaitGroup
	var mu sync.Mutex
	slowest := map[string]herald.RequestRecord{}
	for tenant, arrivals := range streams {
		for _, a := range arrivals {
			wg.Add(1)
			go func(tenant string, a herald.Arrival) {
				defer wg.Done()
				rec, err := submit(base, tenant, a)
				if err != nil {
					log.Fatalf("%s %s: %v", tenant, a.Model, err)
				}
				mu.Lock()
				if rec.LatencyCycles > slowest[tenant].LatencyCycles {
					slowest[tenant] = rec
				}
				mu.Unlock()
			}(tenant, a)
		}
	}
	wg.Wait()

	for tenant, rec := range slowest {
		fmt.Printf("slowest %-7s request: %s #%d — queued %.2f ms, ran %.2f ms, latency %.2f ms\n",
			tenant, rec.Model, rec.ID,
			cyclesToMs(rec.QueueCycles), cyclesToMs(rec.BusyCycles), cyclesToMs(rec.LatencyCycles))
	}

	// Drain and print the operator's dashboard.
	var stats herald.ServingStats
	if err := call("POST", base+"/v1/drain", nil, &stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved %d/%d requests, simulated throughput %.1f req/s\n",
		stats.Completed, stats.Submitted, stats.SimThroughputRPS)
	for i, u := range stats.Utilization {
		fmt.Printf("  %-24s busy %5.1f%%\n", hda.Subs[i].Name, 100*u)
	}
	fmt.Println("\ntenant     done   mean-lat    p50        p95        p99")
	for _, ts := range stats.Tenants {
		fmt.Printf("%-10s %4d   %7.2fms  %7.2fms  %7.2fms  %7.2fms\n",
			ts.Tenant, ts.Completed,
			cyclesToMs(ts.MeanLatencyCycles), cyclesToMs(ts.P50LatencyCycles),
			cyclesToMs(ts.P95LatencyCycles), cyclesToMs(ts.P99LatencyCycles))
	}
	fmt.Printf("\ncost-model cache: %d entries shared across all requests\n", stats.CostCacheEntries)
}

// submit posts one synchronous inference request.
func submit(base, tenant string, a herald.Arrival) (herald.RequestRecord, error) {
	var rec herald.RequestRecord
	err := call("POST", base+"/v1/requests", map[string]any{
		"tenant":        tenant,
		"model":         a.Model,
		"arrival_cycle": a.Cycle,
		"sla_cycles":    200_000_000, // 200 ms at 1 GHz
		"wait":          true,
	}, &rec)
	if err == nil && rec.Status != "done" {
		err = fmt.Errorf("request not served: %+v", rec)
	}
	return rec, err
}

func call(method, url string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: HTTP %d", method, url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// cyclesToMs converts cycles to milliseconds at the 1 GHz reference
// clock.
func cyclesToMs(c int64) float64 { return float64(c) / 1e6 }
