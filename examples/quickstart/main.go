// Quickstart: estimate one model's cost on a fixed dataflow
// accelerator, layer by layer, with the analytical cost model — the
// smallest useful slice of the library (the Figure 2 experiment for a
// single model/style pair).
package main

import (
	"fmt"
	"log"

	herald "repro"
)

func main() {
	model, err := herald.ModelByName("resnet50")
	if err != nil {
		log.Fatal(err)
	}

	// A 256-PE NVDLA-style accelerator with 32 GB/s of NoC bandwidth
	// and a 4 MiB global buffer (the Figure 2 configuration).
	hw := herald.HW{PEs: 256, BWGBps: 32, L2Bytes: 4 << 20}
	et := herald.DefaultEnergyTable()

	fmt.Printf("%s on a %d-PE NVDLA-style FDA\n\n", model.Name, hw.PEs)
	fmt.Printf("%-30s %12s %10s %8s\n", "layer", "cycles", "energy uJ", "util")

	var totalCycles int64
	var totalPJ float64
	for i := range model.Layers {
		l := &model.Layers[i]
		cost := herald.EstimateLayer(l, herald.NVDLA, hw, et)
		totalCycles += cost.Cycles
		totalPJ += cost.EnergyPJ()
		// Print a representative subset to keep the output readable.
		if i < 5 || i >= model.NumLayers()-2 {
			fmt.Printf("%-30s %12d %10.1f %7.1f%%\n",
				l.Name, cost.Cycles, cost.EnergyPJ()/1e6, 100*cost.Mapping.Utilization)
		} else if i == 5 {
			fmt.Printf("%-30s\n", "...")
		}
	}

	seconds := float64(totalCycles) / 1e9 // 1 GHz clock
	fmt.Printf("\ntotal: %.3f ms, %.2f mJ, EDP %.4g J*s\n",
		seconds*1e3, totalPJ*1e-9, totalPJ*1e-12*seconds)

	// The same question for the other two dataflow styles — the
	// dataflow-preference effect in one screenful.
	for _, style := range []herald.Style{herald.ShiDiannao, herald.Eyeriss} {
		var cyc int64
		var pj float64
		for i := range model.Layers {
			c := herald.EstimateLayer(&model.Layers[i], style, hw, et)
			cyc += c.Cycles
			pj += c.EnergyPJ()
		}
		s := float64(cyc) / 1e9
		fmt.Printf("%-12s: %.3f ms, %.2f mJ, EDP %.4g J*s\n", style, s*1e3, pj*1e-9, pj*1e-12*s)
	}
}
