// Scheduler ablation (§V-B "Efficacy of Scheduling Algorithm"): the
// same workload on the same Maelstrom design under Herald's scheduler
// (preference assignment + load-balancing feedback + idle-time
// post-processing) versus the naive greedy scheduler that always takes
// the locally-best sub-accelerator.
package main

import (
	"fmt"
	"log"

	herald "repro"
)

func main() {
	w := herald.ARVRB()
	cache := herald.NewCostCache(herald.DefaultEnergyTable())

	// A Maelstrom-style edge HDA (the Table V edge partition).
	hda, err := herald.NewHDA("maelstrom-edge", herald.Edge, []herald.Partition{
		{Style: herald.NVDLA, PEs: 128, BWGBps: 4},
		{Style: herald.ShiDiannao, PEs: 896, BWGBps: 12},
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, opts herald.SchedOptions) *herald.Schedule {
		s, err := herald.NewScheduler(cache, opts)
		if err != nil {
			log.Fatal(err)
		}
		sch, err := s.Schedule(hda, w)
		if err != nil {
			log.Fatal(err)
		}
		if err := sch.Validate(); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", name, err)
		}
		u := sch.Utilization()
		fmt.Printf("%-8s latency %.4f s  energy %.1f mJ  EDP %.4g  busy [%.0f%% %.0f%%]  (%v)\n",
			name, sch.LatencySeconds(1.0), sch.EnergyMJ(), sch.EDP(1.0),
			100*u[0], 100*u[1], sch.SchedulingTime)
		return sch
	}

	fmt.Printf("scheduling %s (%d layers) on %v\n\n", w.Name, w.TotalLayers(), hda)
	hs := run("herald", herald.DefaultSchedOptions())
	gs := run("greedy", herald.GreedySchedOptions())

	fmt.Printf("\nHerald scheduler EDP reduction vs greedy: %.1f%% (paper reports 24.1%% on average)\n",
		100*(gs.EDP(1.0)-hs.EDP(1.0))/gs.EDP(1.0))

	// Show the effect of the scheduler's individual features.
	noPost := herald.DefaultSchedOptions()
	noPost.PostProcess = false
	run("no-post", noPost)

	depth := herald.DefaultSchedOptions()
	depth.Ordering = herald.DepthFirst
	run("depth1st", depth)
}
