// MLPerf batch-size study (Table VI): how the HDA's advantage over an
// RDA changes with batch size on the mobile accelerator class. HDAs
// feed on inter-model layer parallelism, so more concurrent streams
// favor them; RDAs run one layer at a time however large the batch.
package main

import (
	"fmt"
	"log"

	herald "repro"
)

func main() {
	h := herald.NewFramework()
	class := herald.Mobile

	fmt.Printf("MLPerf multi-stream on the %s class (%d PEs)\n\n", class.Name, class.PEs)
	fmt.Printf("%-6s %-28s %12s %12s\n", "batch", "organization", "latency (s)", "energy (mJ)")

	for _, batch := range []int{1, 2, 4, 8} {
		w := herald.MLPerf(batch)

		design, err := h.CoDesign(class, herald.MaelstromStyles(), w, 16, 8, herald.Exhaustive)
		if err != nil {
			log.Fatal(err)
		}
		rda, err := h.EvalRDA(class, w)
		if err != nil {
			log.Fatal(err)
		}
		var bestFDA herald.Eval
		for _, style := range herald.AllStyles() {
			e, err := h.EvalFDA(class, style, w)
			if err != nil {
				log.Fatal(err)
			}
			if bestFDA.Name == "" || e.EDP < bestFDA.EDP {
				bestFDA = e
			}
		}

		fmt.Printf("%-6d %-28s %12.4f %12.1f\n", batch, "HDA "+design.HDA.String(), design.LatencySec, design.EnergyMJ)
		fmt.Printf("%-6s %-28s %12.4f %12.1f\n", "", "best FDA ("+bestFDA.Name+")", bestFDA.LatencySec, bestFDA.EnergyMJ)
		fmt.Printf("%-6s %-28s %12.4f %12.1f\n", "", "RDA", rda.LatencySec, rda.EnergyMJ)
		fmt.Printf("%-6s -> HDA vs RDA: latency %+.1f%%, energy %+.1f%%\n\n", "",
			100*(rda.LatencySec-design.LatencySec)/rda.LatencySec,
			100*(rda.EnergyMJ-design.EnergyMJ)/rda.EnergyMJ)
	}
}
