// Layer-fused segment serving: split each model into contiguous layer
// segments at the dataflow-preference boundaries (dse.PlanSegments),
// then serve each request as a precedence chain of per-segment
// instances the fleet dispatcher routes independently.
//
// The demo drives the same back-to-back AR/VR burst through a
// dataflow-specialized fleet — one NVDLA FDA replica and one
// Shi-diannao FDA replica — unfused and fused. Unfused, every request
// runs end to end on whichever single-dataflow replica the dispatcher
// picks, so the depthwise half of a MobileNet pays NVDLA's penalty
// (or the pointwise half pays Shi-diannao's). Fused, each segment
// lands on the replica whose dataflow prefers its layers and the
// chains pipeline across the fleet: segment 2 of one request overlaps
// segment 1 of the next.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	herald "repro"
)

const pairs = 16 // render+track request pairs per run

func main() {
	cache := herald.NewCostCache(herald.DefaultEnergyTable())

	// The planning HDA carries both dataflows: segment cuts fall at
	// the layer ranges where the preferred style flips.
	planHDA, err := herald.NewHDA("maelstrom-edge", herald.Edge, []herald.Partition{
		{Style: herald.NVDLA, PEs: 512, BWGBps: 8},
		{Style: herald.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	models := []string{"mobilenetv2", "mobilenetv1"}
	plans := make(map[string]herald.SegmentPlan)
	for _, name := range models {
		m, err := herald.ModelByName(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := herald.PlanSegments(cache, planHDA, m, herald.ObjectiveEDP, 4)
		if err != nil {
			log.Fatal(err)
		}
		plans[name] = p
		fmt.Printf("fusion plan %-12s %d segments (period %.2f ms, chain %.2f ms)\n",
			name, p.NumSegments(), ms(p.PeriodCycles), ms(p.ChainCycles))
		for _, sg := range p.Segments {
			fmt.Printf("  layers [%3d,%3d) -> %-12s %6.2f ms\n",
				sg.From, sg.To, planHDA.Subs[sg.SubAcc].Style, ms(sg.Cycles))
		}
	}
	fmt.Println()

	// The serving fleet: the same silicon split into one FDA per
	// dataflow. Whole requests must pick one style; segments need not.
	nvdla, err := herald.NewFDA(herald.Edge, herald.NVDLA)
	if err != nil {
		log.Fatal(err)
	}
	shi, err := herald.NewFDA(herald.Edge, herald.ShiDiannao)
	if err != nil {
		log.Fatal(err)
	}
	hdas := []*herald.HDA{nvdla, shi}

	unfused, ulat := drive(cache, hdas, nil)
	fused, flat := drive(cache, hdas, plans)

	fmt.Println("=== unfused (whole-model requests, cost-aware routing) ===")
	report(unfused, ulat)
	fmt.Println("=== fused (segment chains, cost-aware per-segment routing) ===")
	report(fused, flat)

	sg := fused.Segments
	fmt.Printf("fused served %d requests as %d segments, %d cross-replica handoffs\n",
		sg.FusedCompleted, sg.SegmentsCompleted, fused.CrossReplicaHandoffs)
	fmt.Printf("pipeline overlap: %.2f ms of handoff bubbles over %.2f ms of segment span\n",
		ms(sg.HandoffBubbleCycles), ms(sg.SegmentSpanCycles))
	fmt.Printf("burst makespan %.2f ms -> %.2f ms: %.2fx from segment pipelining\n",
		ms(makespan(unfused)), ms(makespan(fused)),
		float64(makespan(unfused))/float64(makespan(fused)))
}

// drive submits the AR/VR burst (every request arrives at cycle 0 —
// the regime where whole-request dispatch strands each request on one
// dataflow), waits for every completion, and drains the fleet. It
// returns the fleet stats plus per-tenant request latencies taken
// from the merged records, so fused and unfused runs compare at the
// same granularity (a fused request's latency ends at its last
// segment's completion).
func drive(cache *herald.CostCache, hdas []*herald.HDA, plans map[string]herald.SegmentPlan) (herald.FleetStats, map[string][]int64) {
	opts := herald.DefaultFleetOptions()
	opts.Plans = plans
	f, err := herald.NewFleet(cache, hdas, opts)
	if err != nil {
		log.Fatal(err)
	}
	type sub struct {
		tenant string
		ticket *herald.FleetTicket
	}
	var tickets []sub
	for i := 0; i < pairs; i++ {
		for _, rq := range []struct{ tenant, model string }{
			{"render", "mobilenetv2"},
			{"track", "mobilenetv1"},
		} {
			t, err := f.Submit(herald.InferenceRequest{
				Tenant: rq.tenant, Model: rq.model, ArrivalCycle: 0,
			})
			if err != nil {
				log.Fatalf("%s %s: %v", rq.tenant, rq.model, err)
			}
			tickets = append(tickets, sub{rq.tenant, t})
		}
	}
	lat := make(map[string][]int64)
	for _, s := range tickets {
		rec, err := s.ticket.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if rec.Status != herald.StatusDone {
			log.Fatalf("request %d failed: %s", rec.ID, rec.Err)
		}
		lat[s.tenant] = append(lat[s.tenant], rec.LatencyCycles)
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return st, lat
}

// makespan is the latest committed cycle across the fleet's replicas:
// when the burst finishes on the slowest engine.
func makespan(st herald.FleetStats) int64 {
	var m int64
	for _, rs := range st.PerReplica {
		if rs.Engine.MakespanCycles > m {
			m = rs.Engine.MakespanCycles
		}
	}
	return m
}

func report(st herald.FleetStats, lat map[string][]int64) {
	fmt.Printf("burst of %d requests done in %.2f ms\n", 2*pairs, ms(makespan(st)))
	for _, rs := range st.PerReplica {
		fmt.Printf("  replica %d %-28s dispatched %3d, busy %6.2f ms\n",
			rs.Replica, rs.HDA, rs.Dispatched, ms(rs.Engine.MakespanCycles))
	}
	for _, tenant := range []string{"render", "track"} {
		ls := append([]int64(nil), lat[tenant]...)
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		fmt.Printf("  %-9s done %3d  request p50 %7.2f ms  p99 %7.2f ms\n",
			tenant, len(ls), ms(quantile(ls, 0.50)), ms(quantile(ls, 0.99)))
	}
	fmt.Println()
}

// quantile reads the q-th quantile of sorted latencies.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ms converts cycles to milliseconds at the 1 GHz reference clock.
func ms(c int64) float64 { return float64(c) / 1e6 }
