// Command heraldplay replays captured or generated request traces
// against candidate serving configurations, deterministically: the
// same trace, fault plan and flags render a byte-identical digest
// every run, so configurations A/B offline by diffing digests.
//
// Three modes:
//
//	# generate a scenario trace (internal/scenario spec -> JSONL trace)
//	go run ./cmd/heraldplay -gen testdata/scenarios/zipf.json -o zipf.trace.jsonl
//
//	# replay a trace against a candidate config, digest to stdout or -o
//	go run ./cmd/heraldplay -trace zipf.trace.jsonl \
//	    -partition "nvdla:512:8,shi-diannao:512:8" -replicas 3 -o a.json
//	go run ./cmd/heraldplay -trace zipf.trace.jsonl -replicas 3 \
//	    -fleet-policy round-robin -faults "1000000:0:crash,2000000:0:recover" -o b.json
//
//	# diff two digests, one line per differing leaf
//	go run ./cmd/heraldplay -diff a.json b.json
//
// The replay protocol (internal/replay) admits the trace in quiesce
// windows against paused engines, so batch composition — and with it
// every latency percentile, fault-handling decision and repartition
// decision — is a pure function of trace order; nothing reads the
// wall clock. -window sets the window size in trace entries;
// -repartition steps a repartitioning controller once per full window
// (the deterministic stand-in for heraldd's -resweep-every ticker);
// -elastic steps the intra-HDA elastic controller instead (PE
// reassignment at layer boundaries, escalating to a migration only on
// persistent unreachable drift) — the two controllers are the A/B arms
// of a shoot-out and cannot be combined in one run.
//
// A live incident exports through the daemon: capture the trace with
// heraldd -capture, export the fault log from GET /v1/fleet/decisions,
// and re-run both here under the configuration you wish you had been
// running (see docs/OPERATIONS.md, "Trace capture & replay").
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	herald "repro"
)

func main() {
	log.SetFlags(0)
	genFlag := flag.String("gen", "", "scenario-spec JSON file: generate its trace instead of replaying (writes to -o or stdout)")
	diffFlag := flag.Bool("diff", false, "diff mode: compare the two digest files given as positional arguments")
	traceFlag := flag.String("trace", "", "trace file to replay (capture or heraldplay -gen JSONL)")
	outFlag := flag.String("o", "", "output file (digest or generated trace); default stdout")
	faultsFlag := flag.String("faults", "", "deterministic fault plan, cycle:replica:kind[:arg],... (kinds: crash, stall:factor, admit-fail:count, recover)")

	className := flag.String("class", "edge", "accelerator class: edge, mobile, cloud")
	partitionFlag := flag.String("partition", "nvdla:512:8,shi-diannao:512:8", "serving partition (style:pes:bw,...)")
	clockGHz := flag.Float64("clock-ghz", 1.0, "accelerator clock for cycle<->seconds stats")
	maxQueue := flag.Int("max-queue", 1024, "per-tenant pending-queue capacity (per replica)")
	maxBatch := flag.Int("max-batch", 8, "max admissions coalesced per scheduling round")
	replicas := flag.Int("replicas", 1, "replica serving engines")
	fleetPolicy := flag.String("fleet-policy", "cost-aware", "fleet routing policy: round-robin, least-outstanding, cost-aware")
	fuse := flag.Bool("fuse", false, "engine-level layer-fused segment serving (fleet-level fusion is completion-paced and not replayable)")
	maxSegments := flag.Int("max-segments", 4, "upper bound on segments per fused request (with -fuse; >= 2)")
	mixHalfLife := flag.Int("mix-half-life", 0, "observed-mix half-life in submissions for repartition probes (0 = all-time counts)")
	shedSLAFactor := flag.Float64("shed-sla-factor", 0, "shed arrivals whose best-ETA lateness exceeds this multiple of their SLA (0 = off)")
	maxAttempts := flag.Int("max-attempts", 3, "per-request admission budget across crash failovers")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive replica admission failures that open its circuit breaker")
	breakerProbeAfter := flag.Int("breaker-probe-after", 8, "fleet dispatches after a breaker opens before it admits a half-open probe")

	window := flag.Int("window", 0, "quiesce-window size in trace entries (0 = whole trace in one window; required by -repartition)")
	repartition := flag.Bool("repartition", false, "step a repartitioning controller at every full-window boundary (requires -window > 0)")
	repartitionThreshold := flag.Float64("repartition-threshold", 0.05, "minimum fractional objective improvement before migrating (0 = any improvement)")
	repartitionConfirm := flag.Int("repartition-confirm", 2, "consecutive window probes that must agree on the winner before migrating")
	repartitionCooldown := flag.Int("repartition-cooldown", 3, "observation-only probes after each migration (0 = none)")
	elastic := flag.Bool("elastic", false, "step an elastic (intra-HDA) controller at every full-window boundary (requires -window > 0; mutually exclusive with -repartition)")
	elasticThreshold := flag.Float64("elastic-threshold", 0.02, "minimum fractional objective improvement before a PE reassignment (0 = any improvement)")
	elasticQuantum := flag.Int("elastic-quantum", 0, "PEs one reassignment moves between two sub-accelerators (0 = class PEs / 16)")
	elasticEscalate := flag.Int("elastic-escalate-after", 3, "consecutive unreachable-drift holds before escalating to a full migration")
	elasticEscalateThreshold := flag.Float64("elastic-escalate-threshold", 0.10, "minimum sustained sweep-winner improvement that counts as drift")
	elasticPreemptBelow := flag.Int("elastic-preempt-below", 0, "SLA-risk trigger: preempt requests with priority strictly below this on new violations (0 = off)")
	elasticPreemptMax := flag.Int("elastic-preempt-max", 2, "preemptions per replica per elastic step")
	stylesFlag := flag.String("styles", "nvdla,shi-diannao", "repartition sweep's sub-accelerator dataflow styles")
	peUnits := flag.Int("pe-units", 8, "repartition sweep's PE partitioning granularity")
	bwUnits := flag.Int("bw-units", 4, "repartition sweep's bandwidth partitioning granularity")
	objectiveFlag := flag.String("objective", "edp", "repartition sweep objective: edp, latency, energy")
	flag.Parse()

	switch {
	case *diffFlag:
		if flag.NArg() != 2 {
			log.Fatal("-diff needs exactly two digest files")
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1)))
	case *genFlag != "":
		if err := runGen(*genFlag, *outFlag); err != nil {
			log.Fatal(err)
		}
		return
	case *traceFlag == "":
		log.Fatal("nothing to do: give -trace to replay, -gen to generate, or -diff to compare (see -h)")
	}

	tr, err := readTrace(*traceFlag)
	if err != nil {
		log.Fatal(err)
	}

	class, err := herald.ParseClass(*className)
	if err != nil {
		log.Fatal(err)
	}
	if *replicas < 1 {
		log.Fatalf("-replicas must be >= 1 (got %d)", *replicas)
	}
	parts, err := parsePartition(*partitionFlag)
	if err != nil {
		log.Fatal(err)
	}
	hda, err := herald.NewHDA("heraldplay", class, parts)
	if err != nil {
		log.Fatal(err)
	}
	hdas := make([]*herald.HDA, *replicas)
	for i := range hdas {
		hdas[i] = hda
	}
	policy, err := herald.ParseFleetPolicy(*fleetPolicy)
	if err != nil {
		log.Fatal(err)
	}
	cache := herald.NewCostCache(herald.DefaultEnergyTable())

	opts := herald.ReplayOptions{Fleet: herald.DefaultFleetOptions(), Window: *window}
	opts.Fleet.Policy = policy
	opts.Fleet.MixHalfLife = *mixHalfLife
	opts.Fleet.Serve.ClockGHz = *clockGHz
	opts.Fleet.Serve.MaxQueue = *maxQueue
	opts.Fleet.Serve.MaxBatch = *maxBatch
	opts.Fleet.Health = herald.FleetHealthOptions{
		FailureThreshold: *breakerThreshold,
		ProbeAfter:       *breakerProbeAfter,
		MaxAttempts:      *maxAttempts,
		ShedSLAFactor:    *shedSLAFactor,
	}
	if *faultsFlag != "" {
		if opts.Fleet.Faults, err = herald.ParseFaultPlan(*faultsFlag); err != nil {
			log.Fatal(err)
		}
	}
	if *fuse {
		if *maxSegments < 2 {
			log.Fatalf("-fuse needs -max-segments >= 2 (got %d)", *maxSegments)
		}
		objective, err := parseObjective(*objectiveFlag)
		if err != nil {
			log.Fatal(err)
		}
		// Engine-level fusion: each replica engine decomposes and
		// pipelines internally, which replays deterministically.
		opts.Fleet.Serve.Plans, err = fusionPlans(cache, hda, objective, *maxSegments)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *repartition {
		if *window <= 0 {
			log.Fatal("-repartition needs -window > 0 (the controller steps once per full window)")
		}
		sw, err := sweeper(cache, class, *stylesFlag, *peUnits, *bwUnits, *objectiveFlag)
		if err != nil {
			log.Fatal(err)
		}
		opts.Fleet.Sweeper = sw
		// The library treats 0 as "default"; at the flag level an
		// explicit 0 means "none" (the flag defaults are non-zero).
		threshold, cooldown := *repartitionThreshold, *repartitionCooldown
		if threshold == 0 {
			threshold = 1e-12
		}
		if cooldown == 0 {
			cooldown = -1
		}
		opts.Controller = &herald.RepartitionOptions{
			Threshold: threshold,
			Confirm:   *repartitionConfirm,
			Cooldown:  cooldown,
		}
	}
	if *elastic {
		if *window <= 0 {
			log.Fatal("-elastic needs -window > 0 (the controller steps once per full window)")
		}
		if *repartition {
			log.Fatal("-elastic and -repartition are mutually exclusive (A/B them in separate runs and -diff the digests)")
		}
		// The sweeper feeds the escalation check; the elastic controller
		// works without one but then never migrates.
		sw, err := sweeper(cache, class, *stylesFlag, *peUnits, *bwUnits, *objectiveFlag)
		if err != nil {
			log.Fatal(err)
		}
		opts.Fleet.Sweeper = sw
		// The library treats 0 as "default"; at the flag level an
		// explicit 0 means "any improvement".
		threshold := *elasticThreshold
		if threshold == 0 {
			threshold = 1e-12
		}
		opts.Elastic = &herald.ElasticOptions{
			ReassignThreshold: threshold,
			PEQuantum:         *elasticQuantum,
			EscalateAfter:     *elasticEscalate,
			EscalateThreshold: *elasticEscalateThreshold,
			PreemptBelow:      *elasticPreemptBelow,
			PreemptMax:        *elasticPreemptMax,
		}
	}

	digest, err := herald.Replay(context.Background(), cache, hdas, tr, opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := digest.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	if err := writeOut(*outFlag, b); err != nil {
		log.Fatal(err)
	}
	if *outFlag != "" {
		hash, err := digest.Hash()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("replayed %d entries: %d completed, %d failed, %d shed; conservation holds: %v; digest %s -> %s",
			digest.Trace.Entries, digest.Counters.Completed, digest.Counters.Failed,
			digest.Counters.Shed, digest.Conservation.Holds, hash[:12], *outFlag)
	}
}

// runGen renders a scenario spec into a trace stream.
func runGen(specPath, outPath string) error {
	f, err := os.Open(specPath)
	if err != nil {
		return err
	}
	defer f.Close()
	spec, err := herald.ParseScenarioSpec(f)
	if err != nil {
		return err
	}
	entries, err := herald.GenerateScenario(spec)
	if err != nil {
		return err
	}
	var buf strings.Builder
	if err := herald.WriteTrace(&buf, spec.Note(), entries); err != nil {
		return err
	}
	return writeOut(outPath, []byte(buf.String()))
}

// runDiff compares two digest files; exit 0 when identical, 1 when
// they differ (one line per differing leaf), 2 on read errors.
func runDiff(aPath, bPath string) int {
	a, err := os.ReadFile(aPath)
	if err != nil {
		log.Print(err)
		return 2
	}
	b, err := os.ReadFile(bPath)
	if err != nil {
		log.Print(err)
		return 2
	}
	lines, err := herald.DiffDigests(a, b)
	if err != nil {
		log.Print(err)
		return 2
	}
	if len(lines) == 0 {
		fmt.Println("digests identical")
		return 0
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	return 1
}

func readTrace(path string) (*herald.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return herald.ReadTrace(f)
}

func writeOut(path string, b []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// sweeper builds the repartition probe's reusable partition-search
// handle (pruned best-only mode — a probe only needs the winner).
func sweeper(cache *herald.CostCache, class herald.Class, stylesCSV string, peUnits, bwUnits int, objective string) (*herald.Sweeper, error) {
	var styles []herald.Style
	for _, s := range strings.Split(stylesCSV, ",") {
		st, err := herald.ParseStyle(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		styles = append(styles, st)
	}
	opts := herald.DefaultSearchOptions()
	obj, err := parseObjective(objective)
	if err != nil {
		return nil, err
	}
	opts.Objective = obj
	opts.BestOnly = true
	opts.Prune = true
	sp := herald.SearchSpace{Class: class, Styles: styles, PEUnits: peUnits, BWUnits: bwUnits}
	return herald.NewSweeper(cache, sp, opts)
}

func parseObjective(name string) (herald.SearchObjective, error) {
	switch name {
	case "edp":
		return herald.ObjectiveEDP, nil
	case "latency":
		return herald.ObjectiveLatency, nil
	case "energy":
		return herald.ObjectiveEnergy, nil
	}
	return 0, fmt.Errorf("unknown objective %q (want edp, latency, energy)", name)
}

// fusionPlans computes the winning segment chain of every zoo model
// that splits on the serving HDA (heraldd's -fuse startup, minus the
// logging).
func fusionPlans(cache *herald.CostCache, hda *herald.HDA, objective herald.SearchObjective, maxSegments int) (map[string]herald.SegmentPlan, error) {
	plans := make(map[string]herald.SegmentPlan)
	for _, name := range herald.ModelNames() {
		m, err := herald.ModelByName(name)
		if err != nil {
			return nil, err
		}
		p, err := herald.PlanSegments(cache, hda, m, objective, maxSegments)
		if err != nil {
			return nil, err
		}
		if p.NumSegments() > 1 {
			plans[name] = p
		}
	}
	return plans, nil
}

func parsePartition(s string) ([]herald.Partition, error) {
	var parts []herald.Partition
	for _, item := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(item), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("partition %q: want style:pes:bw", item)
		}
		st, err := herald.ParseStyle(fields[0])
		if err != nil {
			return nil, err
		}
		pes, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("partition %q: bad PEs: %v", item, err)
		}
		bw, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("partition %q: bad bandwidth: %v", item, err)
		}
		parts = append(parts, herald.Partition{Style: st, PEs: pes, BWGBps: bw})
	}
	return parts, nil
}
