// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, so the benchmark trajectory across PRs
// can be tracked mechanically (CI runs it after the bench suite and
// uploads the result; see .github/workflows/ci.yml and `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_PR2.json
//
// Every benchmark line becomes one entry keyed by the benchmark name
// (GOMAXPROCS suffix stripped): iterations, ns/op, B/op, allocs/op
// when present, plus every domain-specific b.ReportMetric unit (e.g.
// makespan-cycles, design-points, wall-req/s) verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is the parsed result of one benchmark.
type Entry struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches `BenchmarkName-8   123   456.7 ns/op   <metrics>`.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)

// metricPair matches one `<value> <unit>` report after ns/op.
var metricPair = regexp.MustCompile(`([0-9.e+-]+)\s+([^\s]+)`)

func parse(in *bufio.Scanner) (map[string]Entry, error) {
	out := make(map[string]Entry)
	for in.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(in.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", in.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", in.Text(), err)
		}
		e := Entry{Iterations: iters, NsPerOp: ns}
		for _, mp := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mp[1], 64)
			if err != nil {
				continue
			}
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[mp[2]] = v
		}
		out[m[1]] = e
	}
	return out, in.Err()
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	entries, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(entries), *outPath)
}
