// Command doclint keeps the documentation layer honest. It runs two
// vet-style checks and exits non-zero when either finds a problem:
//
//  1. Markdown links: every intra-repo link in the repository's .md
//     files must resolve — the target file must exist, and a #fragment
//     must match a heading in the target (GitHub anchor rules).
//     External (scheme-qualified) links are ignored.
//  2. Doc comments: every exported identifier in the given packages —
//     package clause, types, funcs, methods on exported types, and
//     package-level vars/consts (a group comment covers its group) —
//     must carry a doc comment, so `go doc` stays a usable overview.
//
// Usage:
//
//	go run ./cmd/doclint -md . -pkgs internal/fleet,internal/serve
//
// CI runs it via `make doclint`.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	md := flag.String("md", ".", "root to scan for markdown files (skips .git); empty disables the link check")
	pkgs := flag.String("pkgs", "internal/fleet,internal/serve", "comma-separated package dirs whose exported identifiers must have doc comments; empty disables")
	flag.Parse()

	var problems []string
	nmd := 0
	if *md != "" {
		var err error
		var ps []string
		ps, nmd, err = checkMarkdownTree(*md)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	ndecl := 0
	if *pkgs != "" {
		for _, dir := range strings.Split(*pkgs, ",") {
			ps, n, err := checkDocs(strings.TrimSpace(dir))
			if err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
				os.Exit(2)
			}
			problems = append(problems, ps...)
			ndecl += n
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("doclint: ok (%d markdown files, %d exported declarations)\n", nmd, ndecl)
}

// mdLink matches inline markdown links/images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownTree walks root for .md files and validates every
// intra-repo link in each. Returns the problems and the file count.
func checkMarkdownTree(root string) ([]string, int, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	var problems []string
	for _, f := range files {
		ps, err := checkMarkdownFile(f)
		if err != nil {
			return nil, 0, err
		}
		problems = append(problems, ps...)
	}
	return problems, len(files), nil
}

// checkMarkdownFile validates one file's intra-repo links. Links
// inside fenced code blocks are ignored (they are examples, not
// navigation).
func checkMarkdownFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if p := checkLink(path, target); p != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", path, i+1, p))
			}
		}
	}
	return problems, nil
}

// checkLink validates one link target relative to the file holding
// it; empty means the link is fine (or external and out of scope).
func checkLink(from, target string) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return ""
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := from
	if file != "" {
		resolved = filepath.Join(filepath.Dir(from), file)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	// Anchors only make sense into markdown files.
	if !strings.EqualFold(filepath.Ext(resolved), ".md") {
		return ""
	}
	anchors, err := headingAnchors(resolved)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !anchors[frag] {
		return fmt.Sprintf("broken link %q: no heading anchors to #%s in %s", target, frag, resolved)
	}
	return ""
}

// headingAnchors returns the GitHub-style anchor slugs of a markdown
// file's headings (duplicate headings get -1, -2, ... suffixes).
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	seen := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		slug := anchorSlug(text)
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors, nil
}

// anchorSlug lowers a heading to its GitHub anchor: lowercase, spaces
// to hyphens, everything but letters/digits/hyphens/underscores
// dropped.
func anchorSlug(text string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_',
			r >= 'a' && r <= 'z',
			r >= '0' && r <= '9':
			b.WriteRune(r)
		}
	}
	return b.String()
}

// checkDocs parses one package directory (tests excluded) and reports
// exported declarations without doc comments, plus a missing package
// comment. Returns the problems and how many exported declarations it
// checked.
func checkDocs(dir string) ([]string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, 0, err
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	if len(files) == 0 {
		return nil, 0, fmt.Errorf("no Go files in %s", dir)
	}

	var problems []string
	checked := 0
	hasPkgDoc := false
	for _, f := range files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	checked++
	if !hasPkgDoc {
		problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, files[0].Name.Name))
	}

	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				checked++
				if d.Doc == nil {
					problems = append(problems, fmt.Sprintf("%s: exported %s %s is missing a doc comment", pos(d), declKind(d), d.Name.Name))
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					for _, name := range specNames(spec) {
						if !name.IsExported() {
							continue
						}
						checked++
						// A group comment covers the whole group; a
						// spec's own doc or trailing comment covers it.
						if d.Doc == nil && !specDocumented(spec) {
							problems = append(problems, fmt.Sprintf("%s: exported %s %s is missing a doc comment", pos(spec), d.Tok, name.Name))
						}
					}
				}
			}
		}
	}
	return problems, checked, nil
}

// exportedReceiver reports whether a method's receiver type is
// exported (functions have no receiver and count as exported scope).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// declKind names a func declaration for the report.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// specNames returns the identifiers a spec declares.
func specNames(spec ast.Spec) []*ast.Ident {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		return []*ast.Ident{s.Name}
	case *ast.ValueSpec:
		return s.Names
	}
	return nil
}

// specDocumented reports whether a spec carries its own doc or
// trailing line comment.
func specDocumented(spec ast.Spec) bool {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		return s.Doc != nil || s.Comment != nil
	case *ast.ValueSpec:
		return s.Doc != nil || s.Comment != nil
	}
	return false
}
