package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMarkdownLinkCheck covers resolution, anchors, fences, and the
// external-link exemption.
func TestMarkdownLinkCheck(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "target.md"), "# Target Doc\n\n## Tuning knobs\nbody\n")
	write(t, filepath.Join(dir, "README.md"), strings.Join([]string{
		"# Readme",
		"[good](docs/target.md)",
		"[good anchor](docs/target.md#tuning-knobs)",
		"[self anchor](#readme)",
		"[external](https://example.com/nope.md) [mail](mailto:a@b.c)",
		"```",
		"[inside a fence](missing.md)",
		"```",
		"[broken file](docs/nope.md)",
		"[broken anchor](docs/target.md#no-such-heading)",
	}, "\n"))

	problems, n, err := checkMarkdownTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("scanned %d files, want 2", n)
	}
	if len(problems) != 2 {
		t.Fatalf("problems: %v", problems)
	}
	if !strings.Contains(problems[0], "docs/nope.md") || !strings.Contains(problems[1], "no-such-heading") {
		t.Errorf("unexpected problems: %v", problems)
	}
}

// TestAnchorSlug pins the GitHub slug rules the anchor check relies
// on.
func TestAnchorSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Tuning knobs":              "tuning-knobs",
		"Dynamic repartitioning":    "dynamic-repartitioning",
		"HTTP API":                  "http-api",
		"Fleet (and routing: p99!)": "fleet-and-routing-p99",
		"a_b-c":                     "a_b-c",
	} {
		if got := anchorSlug(in); got != want {
			t.Errorf("anchorSlug(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDocCheck: a package with documented and undocumented exported
// declarations reports exactly the undocumented ones.
func TestDocCheck(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), `// Package demo is documented.
package demo

// Documented is fine.
type Documented struct{}

type Naked struct{}

// Fine has a comment.
func Fine() {}

func Bare() {}

func unexported() {}

// Grouped constants share one comment.
const (
	GroupedA = 1
	GroupedB = 2
)

var LooseVar = 3

// Method is documented.
func (d *Documented) Method() {}

func (d Documented) Undocumented() {}
`)
	problems, n, err := checkDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("checked nothing")
	}
	var names []string
	for _, p := range problems {
		names = append(names, p)
	}
	joined := strings.Join(names, "\n")
	for _, want := range []string{"Naked", "Bare", "LooseVar", "Undocumented"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding for %s in:\n%s", want, joined)
		}
	}
	for _, notWant := range []string{"Documented is", "Fine", "GroupedA", "unexported", "Method is"} {
		if strings.Contains(joined, notWant) {
			t.Errorf("false positive %q in:\n%s", notWant, joined)
		}
	}
	if len(problems) != 4 {
		t.Errorf("%d problems, want 4:\n%s", len(problems), joined)
	}
}

// TestDocCheckMissingPackageComment: a package without any package
// clause doc is reported.
func TestDocCheckMissingPackageComment(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), "package nodoc\n")
	problems, _, err := checkDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "package comment") {
		t.Errorf("problems: %v", problems)
	}
}

// TestRepoIsClean: the real repository passes its own lint — the same
// invocation CI runs.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	problems, n, err := checkMarkdownTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("markdown problems:\n%s", strings.Join(problems, "\n"))
	}
	if n < 5 {
		t.Errorf("only %d markdown files found from %s", n, root)
	}
	for _, pkg := range []string{"internal/fleet", "internal/serve"} {
		problems, _, err := checkDocs(filepath.Join(root, pkg))
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != 0 {
			t.Errorf("%s:\n%s", pkg, strings.Join(problems, "\n"))
		}
	}
}
