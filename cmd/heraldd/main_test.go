package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	herald "repro"
)

func TestBootstrapWorkload(t *testing.T) {
	cases := map[string]int{"arvr-a": 10, "ARVR-B": 12, "mlperf": 5}
	for name, want := range cases {
		w, err := bootstrapWorkload(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.NumInstances() != want {
			t.Errorf("%s: %d instances, want %d", name, w.NumInstances(), want)
		}
	}
	if _, err := bootstrapWorkload("nope"); err == nil {
		t.Error("unknown bootstrap workload accepted")
	}
}

func TestParsePartition(t *testing.T) {
	parts, err := parsePartition("nvdla:512:8, shi-diannao:512:8")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || parts[0].PEs != 512 || parts[1].BWGBps != 8 {
		t.Errorf("parts = %+v", parts)
	}
	for _, bad := range []string{"nvdla:512", "tpu:512:8", "nvdla:x:8", "nvdla:512:y"} {
		if _, err := parsePartition(bad); err == nil {
			t.Errorf("%q: accepted", bad)
		}
	}
}

// TestBootstrapSearch runs the deploy-time DSE at coarse granularity
// and checks the best point is a servable HDA for the class.
func TestBootstrapSearch(t *testing.T) {
	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	res, objective, err := bootstrapSearch(cache, herald.Edge, "nvdla,shi-diannao", 4, 2, "exhaustive", "latency", "arvr-a")
	if err != nil {
		t.Fatal(err)
	}
	if objective != herald.ObjectiveLatency {
		t.Errorf("objective %v, want latency", objective)
	}
	hda := res.Best.HDA
	if hda.NumSubs() != 2 || hda.Class.Name != "edge" {
		t.Fatalf("bootstrap HDA %v", hda)
	}
	for _, bad := range [][3]string{
		{"exhaustive", "edp", "nope"},
		{"nope", "edp", "arvr-a"},
		{"exhaustive", "nope", "arvr-a"},
		{"exhaustive", "edp", "arvr-a"},
	} {
		strategy, objective, wl := bad[0], bad[1], bad[2]
		if strategy == "exhaustive" && objective == "edp" && wl == "arvr-a" {
			continue // the valid combination
		}
		if _, _, err := bootstrapSearch(cache, herald.Edge, "nvdla,shi-diannao", 4, 2, strategy, objective, wl); err == nil {
			t.Errorf("bootstrapSearch(%s,%s,%s) accepted", strategy, objective, wl)
		}
	}
	if _, _, err := bootstrapSearch(cache, herald.Edge, "nvdla,warp", 4, 2, "exhaustive", "edp", "arvr-a"); err == nil {
		t.Error("bad style accepted")
	}
}

// TestResweepProbe: the -resweep-every machinery end to end — a fleet
// of one with the flag-built sweeper reports "no traffic" before any
// request, and after serving a mixed load the probe names the
// partition the observed mix would pick.
func TestResweepProbe(t *testing.T) {
	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	sw, err := resweepSweeper(cache, herald.Edge, "nvdla,shi-diannao", 4, 2, "exhaustive", "edp")
	if err != nil {
		t.Fatal(err)
	}
	hda, err := herald.NewHDA("probe", herald.Edge, []herald.Partition{
		{Style: herald.NVDLA, PEs: 512, BWGBps: 8},
		{Style: herald.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := herald.DefaultFleetOptions()
	opts.Sweeper = sw
	fl, err := herald.NewReplicatedFleet(cache, hda, 1, opts)
	if err != nil {
		t.Fatal(err)
	}

	if line := resweepProbe(fl); !strings.Contains(line, "no traffic") {
		t.Errorf("probe before traffic: %q", line)
	}

	for _, model := range []string{"mobilenetv1", "mobilenetv1", "resnet50"} {
		tk, err := fl.Submit(herald.InferenceRequest{Tenant: "t", Model: model, ArrivalCycle: 0})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	line := resweepProbe(fl)
	if !strings.Contains(line, "would pick") || !strings.Contains(line, "evaluated") {
		t.Errorf("probe after traffic: %q", line)
	}
	if _, err := fl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The flag parsers behind the sweeper must keep rejecting garbage.
	if _, err := resweepSweeper(cache, herald.Edge, "warp", 4, 2, "exhaustive", "edp"); err == nil {
		t.Error("bad style accepted")
	}
	if _, err := resweepSweeper(cache, herald.Edge, "nvdla,shi-diannao", 4, 2, "nope", "edp"); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := resweepSweeper(cache, herald.Edge, "nvdla,shi-diannao", 4, 2, "exhaustive", "nope"); err == nil {
		t.Error("bad objective accepted")
	}
}

// TestRepartitionController: the -repartition wiring end to end — a
// fleet with the flag-built sweeper, serving a partition the live
// traffic disagrees with, migrates to the traffic's winner on one
// controller step and keeps serving.
func TestRepartitionController(t *testing.T) {
	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	sw, err := resweepSweeper(cache, herald.Edge, "nvdla,shi-diannao", 4, 2, "exhaustive", "edp")
	if err != nil {
		t.Fatal(err)
	}
	// Serve the mobilenet-optimal NVDLA-heavy split while the live
	// traffic is all unet (which wants a different partition).
	hda, err := herald.NewHDA("boot", herald.Edge, []herald.Partition{
		{Style: herald.NVDLA, PEs: 768, BWGBps: 8},
		{Style: herald.ShiDiannao, PEs: 256, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := herald.DefaultFleetOptions()
	opts.Sweeper = sw
	fl, err := herald.NewReplicatedFleet(cache, hda, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := herald.NewRepartitionController(fl, herald.RepartitionOptions{Confirm: 1, Cooldown: 2})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		tk, err := fl.Submit(herald.InferenceRequest{Tenant: "arvr", Model: "unet", ArrivalCycle: 0})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	d, err := ctrl.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != herald.RepartitionMigrated || fl.Generation() != 1 {
		t.Fatalf("controller step: %+v (generation %d)", d, fl.Generation())
	}
	if !strings.Contains(d.String(), "MIGRATED") {
		t.Errorf("decision log line %q", d)
	}
	// The migrated fleet still serves.
	tk, err := fl.Submit(herald.InferenceRequest{Tenant: "arvr", Model: "unet", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := tk.Wait(context.Background()); err != nil || rec.Status != herald.StatusDone {
		t.Fatalf("post-migration request: %+v %v", rec, err)
	}
	st, err := fl.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 5 || st.Migrations != 1 {
		t.Fatalf("final stats: %+v", st)
	}
}

// TestTopKHDAs: heterogeneous fleets take their substrates from the
// bootstrap search's top-K points, cycling when the cloud is small.
func TestTopKHDAs(t *testing.T) {
	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	res, objective, err := bootstrapSearch(cache, herald.Edge, "nvdla,shi-diannao", 4, 2, "exhaustive", "latency", "arvr-a")
	if err != nil {
		t.Fatal(err)
	}
	hdas := topKHDAs(res, objective, 3)
	if len(hdas) != 3 {
		t.Fatalf("%d HDAs, want 3", len(hdas))
	}
	if hdas[0] != res.Best.HDA {
		t.Errorf("replica 0 should serve the best point, got %v", hdas[0])
	}
	if hdas[0] == hdas[1] {
		t.Errorf("top-K fleet is homogeneous: %v", hdas)
	}
	// A fleet larger than the design cloud cycles through the top-K.
	many := topKHDAs(res, objective, len(res.Points)+2)
	if many[len(res.Points)] != many[0] {
		t.Error("oversized fleet does not cycle through the cloud")
	}

	// repeatHDA builds the homogeneous list.
	rep := repeatHDA(res.Best.HDA, 4)
	if len(rep) != 4 || rep[0] != rep[3] || rep[0] != res.Best.HDA {
		t.Errorf("repeatHDA: %v", rep)
	}
}

// TestCaptureReplayRoundTrip: the -capture wiring end to end through
// the HTTP surface — a fleet records its accepted submissions through
// OnAccept exactly as main() wires it, traffic flows through POST
// /v1/requests and /v1/drain, and the captured trace replays under
// cmd/heraldplay's engine (herald.Replay) to the live run's counters,
// twice, byte-identically.
func TestCaptureReplayRoundTrip(t *testing.T) {
	cache := herald.NewCostCache(herald.DefaultEnergyTable())
	hda, err := herald.NewHDA("cap", herald.Edge, []herald.Partition{
		{Style: herald.NVDLA, PEs: 512, BWGBps: 8},
		{Style: herald.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rec, err := herald.NewTraceRecorder(&buf, "heraldd capture")
	if err != nil {
		t.Fatal(err)
	}
	opts := herald.DefaultFleetOptions()
	opts.OnAccept = func(req herald.InferenceRequest, plan string) {
		_ = rec.Record(herald.TraceEntry{
			Tenant: req.Tenant, Model: req.Model, ArrivalCycle: req.ArrivalCycle,
			SLACycles: req.SLACycles, Priority: req.Priority, Plan: plan,
		})
	}
	fl, err := herald.NewReplicatedFleet(cache, hda, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fl.Handler())
	defer srv.Close()

	// Live traffic with explicit arrival cycles (what a replayable
	// client sends) through the public endpoint.
	reqs := []string{
		`{"tenant":"a","model":"mobilenetv1","arrival_cycle":1000,"sla_cycles":90000000,"wait":true}`,
		`{"tenant":"b","model":"brq-handpose","arrival_cycle":2000,"wait":true}`,
		`{"tenant":"a","model":"mobilenetv1","arrival_cycle":250000,"priority":1,"wait":true}`,
		`{"tenant":"c","model":"no-such-model","arrival_cycle":3000}`, // rejected: must NOT be captured
		`{"tenant":"b","model":"resnet50","arrival_cycle":500000,"wait":true}`,
	}
	for i, body := range reqs {
		resp, err := http.Post(srv.URL+"/v1/requests", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if i == 3 {
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("bad-model submission: status %d", resp.StatusCode)
			}
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var live struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 4 {
		t.Fatalf("captured %d entries, want 4 (the rejected submission must not be recorded)", rec.Count())
	}

	tr, err := herald.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 4 {
		t.Fatalf("trace holds %d entries, want 4", len(tr.Entries))
	}
	if e := tr.Entries[0]; e.Tenant != "a" || e.SLACycles != 90000000 {
		t.Fatalf("entry 0 lost fields: %+v", e)
	}
	if e := tr.Entries[2]; e.Priority != 1 {
		t.Fatalf("entry 2 lost priority: %+v", e)
	}

	// Replay the capture twice against the same config: byte-identical
	// digests, counters matching the live run.
	run := func() ([]byte, *herald.ReplayDigest) {
		d, err := herald.Replay(context.Background(), cache, []*herald.HDA{hda, hda}, tr,
			herald.ReplayOptions{Fleet: herald.DefaultFleetOptions()})
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		return b, d
	}
	b1, d1 := run()
	b2, _ := run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("replaying the captured trace twice produced different digests")
	}
	if !d1.Conservation.Holds {
		t.Fatalf("replay conservation violated: %+v", d1.Conservation)
	}
	if d1.Counters.Submitted != live.Submitted || d1.Counters.Completed != live.Completed {
		t.Fatalf("replay counters (%d submitted, %d completed) diverge from the live run (%d, %d)",
			d1.Counters.Submitted, d1.Counters.Completed, live.Submitted, live.Completed)
	}
}
