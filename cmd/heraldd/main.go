// Command heraldd is Herald's online serving daemon: the runtime
// counterpart of cmd/herald's design-time search. At startup it fixes
// an HDA — either the best point of a bootstrap dse.Search over a
// representative workload, or an explicit -partition — then serves a
// JSON-over-HTTP API that admits DNN inference requests at runtime,
// extends the layer schedule incrementally, and reports per-request
// latency/SLA statistics plus aggregate throughput.
//
// With -replicas N > 1 the daemon serves a *fleet*: N replica engines
// behind a routing policy (-fleet-policy round-robin,
// least-outstanding or cost-aware). -fleet-topk makes the fleet
// heterogeneous: the replicas take the top-K design points of the
// bootstrap DSE instead of K copies of the best.
//
// Examples:
//
//	go run ./cmd/heraldd -addr :8080 -class edge -bootstrap arvr-a
//	go run ./cmd/heraldd -class mobile -styles nvdla,shi-diannao \
//	    -pe-units 8 -bw-units 4 -objective latency
//	go run ./cmd/heraldd -class edge -partition "nvdla:512:8,shi-diannao:512:8"
//	go run ./cmd/heraldd -class edge -replicas 4 -fleet-policy cost-aware
//	go run ./cmd/heraldd -class edge -replicas 3 -fleet-topk
//	go run ./cmd/heraldd -class edge -replicas 2 -resweep-every 30s
//	go run ./cmd/heraldd -class edge -replicas 2 -resweep-every 30s -repartition
//	go run ./cmd/heraldd -class edge -fuse -max-segments 4
//	go run ./cmd/heraldd -class edge -replicas 2 -fuse -mix-half-life 256
//
// -fuse turns on layer-fused segment serving: at startup the daemon
// searches each zoo model's fusion cuts on the serving HDA (bounded by
// -max-segments) and admits each request for a splitting model as a
// chain of per-segment instances, so consecutive requests pipeline
// across sub-accelerators. Fleets route the segments cost-aware across
// replicas; GET /v1/stats reports the segment counters.
// -mix-half-life makes the resweep probe's observed mix exponentially
// decayed instead of all-time.
//
// -resweep-every N periodically re-runs the partition DSE on the
// observed tenant mix. Alone it is a log-only probe; with
// -repartition the probe becomes a control loop that live-migrates
// the fleet to the winning partition (spawn new replica engines,
// drain the old generation, hand tenants over) when the winner beats
// the serving partition by -repartition-threshold for
// -repartition-confirm consecutive probes, then rests for
// -repartition-cooldown probes (anti-flap). See docs/OPERATIONS.md
// for the full runbook.
//
// Fault tolerance (see docs/OPERATIONS.md, "Failure handling"):
// -faults injects a deterministic, cycle-scheduled fault plan
// ("3000:0:crash,5000:0:recover") for chaos testing; crashed
// replicas' queued requests fail over to survivors (bounded by
// -max-attempts) and a consecutive-failure circuit breaker
// (-breaker-threshold, -breaker-probe-after) routes around replicas
// that stop admitting. -shed-sla-factor turns on overload shedding:
// arrivals whose best ETA already blows their SLA budget get 429 +
// Retry-After instead of queueing. Both -faults and -shed-sla-factor
// serve a fleet even at -replicas 1. GET /v1/fleet/health reports
// per-replica health and the fault-handling decision log. The daemon
// shuts down gracefully on SIGINT/SIGTERM: stop admissions, drain
// in-flight work, log final stats.
//
// -capture streams every accepted request (tenant, model, arrival
// cycle, SLA, fusion-plan id) to a versioned JSONL trace file in
// admission order, flushed after the graceful drain. Together with the
// exported fault log (GET /v1/fleet/decisions) the trace re-runs
// offline under cmd/heraldplay — byte-reproducible incident replay and
// config A/B (docs/OPERATIONS.md, "Trace capture & replay").
//
// API (see internal/serve; fleets serve internal/fleet's API, which
// adds GET /v1/fleet/stats, GET /v1/fleet/repartition and
// /v1/replicas/{i}/... delegation):
//
//	POST /v1/requests      {"tenant":"arvr","model":"unet","wait":true}
//	GET  /v1/requests/{id}
//	GET  /v1/stats
//	GET  /v1/schedule
//	POST /v1/drain
//	GET  /v1/models | /v1/hda | /v1/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	herald "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	className := flag.String("class", "edge", "accelerator class: edge, mobile, cloud")
	stylesFlag := flag.String("styles", "nvdla,shi-diannao", "comma-separated sub-accelerator dataflow styles")
	peUnits := flag.Int("pe-units", 8, "bootstrap DSE PE partitioning granularity")
	bwUnits := flag.Int("bw-units", 4, "bootstrap DSE bandwidth partitioning granularity")
	strategyFlag := flag.String("strategy", "exhaustive", "bootstrap search strategy: exhaustive, binary, random")
	objectiveFlag := flag.String("objective", "edp", "bootstrap search objective: edp, latency, energy")
	bootstrap := flag.String("bootstrap", "arvr-a", "bootstrap workload the DSE optimizes the HDA for: arvr-a, arvr-b, mlperf")
	partitionFlag := flag.String("partition", "", "skip the DSE; serve on this fixed partition (style:pes:bw,...)")
	clockGHz := flag.Float64("clock-ghz", 1.0, "accelerator clock for cycle<->seconds stats")
	maxQueue := flag.Int("max-queue", 1024, "per-tenant pending-queue capacity (per replica)")
	maxBatch := flag.Int("max-batch", 8, "max admissions coalesced per scheduling round")
	replicas := flag.Int("replicas", 1, "replica serving engines; > 1 serves a fleet")
	fleetPolicy := flag.String("fleet-policy", "cost-aware", "fleet routing policy: round-robin, least-outstanding, cost-aware")
	fleetTopK := flag.Bool("fleet-topk", false, "heterogeneous fleet: replicas take the top-K bootstrap-DSE points instead of K copies of the best")
	resweepEvery := flag.Duration("resweep-every", 0, "periodically re-run the partition DSE on the observed tenant mix (0 = off; log-only unless -repartition)")
	repartition := flag.Bool("repartition", false, "act on the resweep probe: live-migrate the fleet to the winning partition (requires -resweep-every)")
	repartitionThreshold := flag.Float64("repartition-threshold", 0.05, "minimum fractional objective improvement before migrating (0.05 = winner must be 5% better; 0 = any improvement)")
	repartitionConfirm := flag.Int("repartition-confirm", 2, "consecutive probes that must agree on the winner before migrating (hysteresis, >= 1)")
	repartitionCooldown := flag.Int("repartition-cooldown", 3, "observation-only probes after each migration (anti-flap; 0 = none)")
	elastic := flag.Bool("elastic", false, "act on the resweep period with the elastic (intra-HDA) controller: re-slice PEs between sub-accelerators at layer boundaries instead of migrating, escalating to a migration only on persistent unreachable drift (requires -resweep-every; mutually exclusive with -repartition)")
	elasticThreshold := flag.Float64("elastic-threshold", 0.02, "minimum fractional objective improvement before a PE reassignment (0 = any improvement)")
	elasticQuantum := flag.Int("elastic-quantum", 0, "PEs one reassignment moves between two sub-accelerators (0 = class PEs / 16)")
	elasticEscalate := flag.Int("elastic-escalate-after", 3, "consecutive unreachable-drift holds before the elastic controller escalates to a full migration")
	elasticEscalateThreshold := flag.Float64("elastic-escalate-threshold", 0.10, "minimum sustained sweep-winner improvement that counts as unreachable drift")
	elasticPreemptBelow := flag.Int("elastic-preempt-below", 0, "SLA-risk trigger: preempt requests with priority strictly below this when new violations appear (0 = off)")
	elasticPreemptMax := flag.Int("elastic-preempt-max", 2, "preemptions per replica per elastic step")
	fuse := flag.Bool("fuse", false, "layer-fused segment serving: decompose each request into its model's winning segment chain so consecutive requests pipeline across sub-accelerators")
	maxSegments := flag.Int("max-segments", 4, "upper bound on segments per fused request (with -fuse; >= 2)")
	mixHalfLife := flag.Int("mix-half-life", 0, "observed-mix half-life in submissions for resweep probes (0 = all-time counts)")
	faultsFlag := flag.String("faults", "", "deterministic fault plan, cycle:replica:kind[:arg],... (kinds: crash, stall:factor, admit-fail:count, recover); serves a fleet even with -replicas 1")
	shedSLAFactor := flag.Float64("shed-sla-factor", 0, "shed arrivals whose best-ETA lateness exceeds this multiple of their SLA, with 429 + Retry-After (0 = off; needs cost-aware routing and per-request sla_cycles; serves a fleet even with -replicas 1)")
	maxAttempts := flag.Int("max-attempts", 3, "per-request admission budget across crash failovers (initial dispatch included)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive replica admission failures that open its circuit breaker")
	breakerProbeAfter := flag.Int("breaker-probe-after", 8, "fleet dispatches after a breaker opens before it admits a half-open probe")
	capturePath := flag.String("capture", "", "stream every accepted request to this JSONL trace file, flushed on graceful shutdown (replay it with cmd/heraldplay)")
	flag.Parse()

	class, err := herald.ParseClass(*className)
	if err != nil {
		log.Fatal(err)
	}
	if *replicas < 1 {
		log.Fatalf("-replicas must be >= 1 (got %d)", *replicas)
	}
	if *repartition && *resweepEvery <= 0 {
		log.Fatal("-repartition needs -resweep-every > 0 (the probe period is the control period)")
	}
	if *elastic && *resweepEvery <= 0 {
		log.Fatal("-elastic needs -resweep-every > 0 (the probe period is the control period)")
	}
	if *elastic && *repartition {
		log.Fatal("-elastic and -repartition are mutually exclusive (the elastic controller escalates to migrations on its own)")
	}
	if *elasticEscalate < 1 {
		log.Fatalf("-elastic-escalate-after must be >= 1 (got %d)", *elasticEscalate)
	}
	if *elasticPreemptBelow < 0 || *elasticPreemptMax < 1 {
		log.Fatalf("-elastic-preempt-below must be >= 0 and -elastic-preempt-max >= 1 (got %d, %d)",
			*elasticPreemptBelow, *elasticPreemptMax)
	}
	var faultPlan *herald.FaultPlan
	if *faultsFlag != "" {
		if faultPlan, err = herald.ParseFaultPlan(*faultsFlag); err != nil {
			log.Fatal(err)
		}
	}
	cache := herald.NewCostCache(herald.DefaultEnergyTable())

	var hdas []*herald.HDA
	if *partitionFlag != "" {
		if *fleetTopK {
			log.Fatal("-fleet-topk needs the bootstrap DSE; it cannot be combined with -partition")
		}
		parts, err := parsePartition(*partitionFlag)
		if err != nil {
			log.Fatal(err)
		}
		hda, err := herald.NewHDA("heraldd", class, parts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving on fixed partition %v", hda)
		hdas = repeatHDA(hda, *replicas)
	} else {
		res, objective, err := bootstrapSearch(cache, class, *stylesFlag, *peUnits, *bwUnits, *strategyFlag, *objectiveFlag, *bootstrap)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("bootstrap DSE: %d points, best (%s) %v", len(res.Points), *objectiveFlag, res.Best.HDA)
		if *fleetTopK && *replicas > 1 {
			hdas = topKHDAs(res, objective, *replicas)
		} else {
			hdas = repeatHDA(res.Best.HDA, *replicas)
		}
	}

	srvOpts := herald.DefaultServingOptions()
	srvOpts.ClockGHz = *clockGHz
	srvOpts.MaxQueue = *maxQueue
	srvOpts.MaxBatch = *maxBatch
	// The elastic controller's SLA-risk trigger checkpoints and resumes
	// placements at layer boundaries; the engines must track revocable
	// placements for that (the reassignment path needs nothing extra).
	srvOpts.Elastic = *elastic

	// Trace capture: the recorder hooks the engine's (or fleet's)
	// OnAccept, so the trace is exactly the accepted-submission
	// sequence in admission order — the input cmd/heraldplay replays.
	var rec *herald.TraceRecorder
	var captureFile *os.File
	var record func(req herald.InferenceRequest, plan string)
	if *capturePath != "" {
		f, err := os.Create(*capturePath)
		if err != nil {
			log.Fatal(err)
		}
		captureFile = f
		if rec, err = herald.NewTraceRecorder(f, "heraldd capture"); err != nil {
			log.Fatal(err)
		}
		record = func(req herald.InferenceRequest, plan string) {
			_ = rec.Record(herald.TraceEntry{ // sticky error, reported at flush
				Tenant: req.Tenant, Model: req.Model, ArrivalCycle: req.ArrivalCycle,
				SLACycles: req.SLACycles, Priority: req.Priority, Plan: plan,
			})
		}
		log.Printf("capturing accepted requests to %s", *capturePath)
	}

	var plans map[string]herald.SegmentPlan
	if *fuse {
		if *maxSegments < 2 {
			log.Fatalf("-fuse needs -max-segments >= 2 (got %d)", *maxSegments)
		}
		objOpts, err := searchOptions("exhaustive", *objectiveFlag)
		if err != nil {
			log.Fatal(err)
		}
		plans, err = fusionPlans(cache, hdas[0], objOpts.Objective, *maxSegments, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("layer fusion on: %d of %d zoo models split (max %d segments)",
			len(plans), len(herald.ModelNames()), *maxSegments)
	}

	// The signal context drives graceful shutdown: stop admitting, stop
	// the repartition controller, drain, log final stats.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var handler http.Handler
	var drain func(context.Context)
	if *replicas == 1 && *resweepEvery <= 0 && faultPlan == nil && *shedSLAFactor == 0 {
		srvOpts.Plans = plans
		srvOpts.OnAccept = record
		engine, err := herald.NewServingEngine(cache, hdas[0], srvOpts)
		if err != nil {
			log.Fatal(err)
		}
		handler = engine.Handler()
		drain = func(ctx context.Context) {
			st, err := engine.Drain(ctx)
			if err != nil {
				log.Printf("drain: %v", err)
			}
			log.Printf("final stats: %d submitted, %d completed, %d failed, %d rejected",
				st.Submitted, st.Completed, st.Failed, st.Rejected)
		}
		log.Printf("heraldd listening on %s (HDA %v, clock %g GHz)", *addr, hdas[0], *clockGHz)
	} else {
		// A resweep probe needs the fleet dispatcher's observed-mix
		// accounting — and fault injection/shedding live in the fleet
		// dispatcher — so those flags promote even a single replica to
		// a fleet of one.
		policy, err := herald.ParseFleetPolicy(*fleetPolicy)
		if err != nil {
			log.Fatal(err)
		}
		fopts := herald.FleetOptions{
			Serve: srvOpts, Policy: policy, Plans: plans, MixHalfLife: *mixHalfLife,
			OnAccept: record,
			Faults:   faultPlan,
			Health: herald.FleetHealthOptions{
				FailureThreshold: *breakerThreshold,
				ProbeAfter:       *breakerProbeAfter,
				MaxAttempts:      *maxAttempts,
				ShedSLAFactor:    *shedSLAFactor,
			},
		}
		if *resweepEvery > 0 {
			sw, err := resweepSweeper(cache, class, *stylesFlag, *peUnits, *bwUnits, *strategyFlag, *objectiveFlag)
			if err != nil {
				log.Fatal(err)
			}
			fopts.Sweeper = sw
		}
		fl, err := herald.NewFleet(cache, hdas, fopts)
		if err != nil {
			log.Fatal(err)
		}
		handler = fl.Handler()
		drain = func(ctx context.Context) {
			st, err := fl.Drain(ctx)
			if err != nil {
				log.Printf("drain: %v", err)
			}
			log.Printf("final stats: %d submitted, %d completed, %d failed, %d rejected, %d shed, %d failovers",
				st.Submitted, st.Completed, st.Failed, st.Rejected, st.Shed, st.Failovers)
		}
		for i, h := range hdas {
			log.Printf("  replica %d: %v", i, h)
		}
		log.Printf("heraldd fleet listening on %s (%d replicas, %s routing, clock %g GHz)",
			*addr, len(hdas), policy, *clockGHz)
		if faultPlan != nil {
			log.Printf("fault injection on: %d scheduled events (-faults)", len(faultPlan.Events))
		}
		if *shedSLAFactor > 0 {
			log.Printf("overload shedding on: budget %gx SLA (-shed-sla-factor)", *shedSLAFactor)
		}
		if *resweepEvery > 0 {
			if *elastic {
				// The library treats 0 as "default"; at the flag level an
				// explicit 0 means "any improvement".
				threshold := *elasticThreshold
				if threshold == 0 {
					threshold = 1e-12
				}
				ctrl, err := herald.NewElasticController(fl, herald.ElasticOptions{
					ReassignThreshold: threshold,
					PEQuantum:         *elasticQuantum,
					EscalateAfter:     *elasticEscalate,
					EscalateThreshold: *elasticEscalateThreshold,
					PreemptBelow:      *elasticPreemptBelow,
					PreemptMax:        *elasticPreemptMax,
					Logf:              log.Printf,
				})
				if err != nil {
					log.Fatal(err)
				}
				log.Printf("elastic controller every %v (reassign threshold %.3g, escalate after %d at %.3g, preempt below %d max %d)",
					*resweepEvery, *elasticThreshold, *elasticEscalate, *elasticEscalateThreshold,
					*elasticPreemptBelow, *elasticPreemptMax)
				// The signal context stops the controller before the drain.
				go ctrl.Run(ctx, *resweepEvery)
			} else if *repartition {
				// The library treats 0 as "default"; at the flag level an
				// explicit 0 means "none" (the flag defaults are non-zero).
				threshold, cooldown := *repartitionThreshold, *repartitionCooldown
				if threshold == 0 {
					threshold = 1e-12
				}
				if cooldown == 0 {
					cooldown = -1
				}
				ctrl, err := herald.NewRepartitionController(fl, herald.RepartitionOptions{
					Threshold: threshold,
					Confirm:   *repartitionConfirm,
					Cooldown:  cooldown,
					Logf:      log.Printf,
				})
				if err != nil {
					log.Fatal(err)
				}
				log.Printf("repartition controller every %v (threshold %.3g, confirm %d, cooldown %d)",
					*resweepEvery, *repartitionThreshold, *repartitionConfirm, *repartitionCooldown)
				// The signal context stops the controller before the drain.
				go ctrl.Run(ctx, *resweepEvery)
			} else {
				log.Printf("resweep probe every %v (log-only; add -repartition to act on it)", *resweepEvery)
				go resweepLoop(ctx, fl, *resweepEvery, log.Printf)
			}
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stopSignals() // a second signal kills the process the default way
	log.Printf("signal received; shutting down (draining in-flight work)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("http shutdown: %v", err)
	}
	drain(shutCtx)
	// Flush the capture after the drain: admissions have stopped, so
	// the trace is complete and replayable the moment the process
	// exits.
	if rec != nil {
		if err := rec.Flush(); err != nil {
			log.Printf("capture flush: %v", err)
		} else {
			log.Printf("captured %d accepted requests to %s", rec.Count(), *capturePath)
		}
		if err := captureFile.Close(); err != nil {
			log.Printf("capture close: %v", err)
		}
	}
}

// resweepSweeper builds the reusable partition-search handle the fleet
// probes with: the bootstrap space, in pruned best-only mode (a probe
// only needs the winner).
func resweepSweeper(cache *herald.CostCache, class herald.Class, stylesCSV string, peUnits, bwUnits int, strategy, objective string) (*herald.Sweeper, error) {
	var styles []herald.Style
	for _, s := range strings.Split(stylesCSV, ",") {
		st, err := herald.ParseStyle(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		styles = append(styles, st)
	}
	opts, err := searchOptions(strategy, objective)
	if err != nil {
		return nil, err
	}
	opts.BestOnly = true
	opts.Prune = true
	sp := herald.SearchSpace{Class: class, Styles: styles, PEUnits: peUnits, BWUnits: bwUnits}
	return herald.NewSweeper(cache, sp, opts)
}

// resweepLoop periodically fires resweepProbe and logs the outcome
// until ctx (the daemon's signal context) is cancelled.
func resweepLoop(ctx context.Context, fl *herald.Fleet, every time.Duration, logf func(string, ...any)) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			logf("%s", resweepProbe(fl))
		case <-ctx.Done():
			return
		}
	}
}

// resweepProbe runs one observed-mix resweep and renders the log line:
// what partition today's traffic would pick. It never acts on the
// result — that is the -repartition controller's job.
func resweepProbe(fl *herald.Fleet) string {
	res, err := fl.Resweep(nil)
	if err != nil {
		return fmt.Sprintf("resweep probe: %v", err)
	}
	return fmt.Sprintf("resweep probe: observed mix would pick %v (EDP %.4g J*s, latency %.3f ms; %d evaluated, %d pruned)",
		res.Best.HDA, res.Best.EDP, res.Best.LatencySec*1e3, res.Explored, res.Pruned)
}

// fusionPlans computes the winning segment chain of every zoo model
// that splits on the serving HDA; models whose best plan is a single
// segment stay unfused and are simply left out of the map.
func fusionPlans(cache *herald.CostCache, hda *herald.HDA, objective herald.SearchObjective, maxSegments int, logf func(string, ...any)) (map[string]herald.SegmentPlan, error) {
	plans := make(map[string]herald.SegmentPlan)
	for _, name := range herald.ModelNames() {
		m, err := herald.ModelByName(name)
		if err != nil {
			return nil, err
		}
		p, err := herald.PlanSegments(cache, hda, m, objective, maxSegments)
		if err != nil {
			return nil, err
		}
		if p.NumSegments() > 1 {
			plans[name] = p
			logf("  fusion plan %s: %d segments (period %d cycles, chain %d cycles)",
				name, p.NumSegments(), p.PeriodCycles, p.ChainCycles)
		}
	}
	return plans, nil
}

// repeatHDA builds a homogeneous replica list.
func repeatHDA(hda *herald.HDA, n int) []*herald.HDA {
	out := make([]*herald.HDA, n)
	for i := range out {
		out[i] = hda
	}
	return out
}

// topKHDAs takes the fleet's replica substrates from the bootstrap
// search's top-K design points (cycling when the cloud is smaller
// than the fleet).
func topKHDAs(res *herald.SearchResult, objective herald.SearchObjective, n int) []*herald.HDA {
	top := res.TopK(objective, n)
	out := make([]*herald.HDA, n)
	for i := range out {
		out[i] = top[i%len(top)].HDA
	}
	return out
}

// bootstrapSearch runs the deploy-time DSE over the bootstrap
// workload; the caller picks the best point (homogeneous serving) or
// the top-K (heterogeneous fleet).
func bootstrapSearch(cache *herald.CostCache, class herald.Class, stylesCSV string, peUnits, bwUnits int, strategy, objective, bootstrap string) (*herald.SearchResult, herald.SearchObjective, error) {
	var styles []herald.Style
	for _, s := range strings.Split(stylesCSV, ",") {
		st, err := herald.ParseStyle(strings.TrimSpace(s))
		if err != nil {
			return nil, 0, err
		}
		styles = append(styles, st)
	}
	w, err := bootstrapWorkload(bootstrap)
	if err != nil {
		return nil, 0, err
	}
	opts, err := searchOptions(strategy, objective)
	if err != nil {
		return nil, 0, err
	}
	sp := herald.SearchSpace{Class: class, Styles: styles, PEUnits: peUnits, BWUnits: bwUnits}
	res, err := herald.Search(cache, sp, w, opts)
	if err != nil {
		return nil, 0, fmt.Errorf("bootstrap DSE: %w", err)
	}
	return res, opts.Objective, nil
}

// searchOptions resolves the -strategy and -objective flags.
func searchOptions(strategy, objective string) (herald.SearchOptions, error) {
	opts := herald.DefaultSearchOptions()
	switch strategy {
	case "exhaustive":
		opts.Strategy = herald.Exhaustive
	case "binary":
		opts.Strategy = herald.Binary
	case "random":
		opts.Strategy = herald.Random
	default:
		return opts, fmt.Errorf("unknown strategy %q", strategy)
	}
	switch objective {
	case "edp":
		opts.Objective = herald.ObjectiveEDP
	case "latency":
		opts.Objective = herald.ObjectiveLatency
	case "energy":
		opts.Objective = herald.ObjectiveEnergy
	default:
		return opts, fmt.Errorf("unknown objective %q", objective)
	}
	return opts, nil
}

func bootstrapWorkload(name string) (*herald.Workload, error) {
	switch strings.ToLower(name) {
	case "arvr-a", "arvra":
		return herald.ARVRA(), nil
	case "arvr-b", "arvrb":
		return herald.ARVRB(), nil
	case "mlperf":
		return herald.MLPerf(1), nil
	}
	return nil, fmt.Errorf("unknown bootstrap workload %q (want arvr-a, arvr-b, mlperf)", name)
}

func parsePartition(s string) ([]herald.Partition, error) {
	var parts []herald.Partition
	for _, item := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(item), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("partition %q: want style:pes:bw", item)
		}
		st, err := herald.ParseStyle(fields[0])
		if err != nil {
			return nil, err
		}
		pes, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("partition %q: bad PEs: %v", item, err)
		}
		bw, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("partition %q: bad bandwidth: %v", item, err)
		}
		parts = append(parts, herald.Partition{Style: st, PEs: pes, BWGBps: bw})
	}
	return parts, nil
}
