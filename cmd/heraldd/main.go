// Command heraldd is Herald's online serving daemon: the runtime
// counterpart of cmd/herald's design-time search. At startup it fixes
// an HDA — either the best point of a bootstrap dse.Search over a
// representative workload, or an explicit -partition — then serves a
// JSON-over-HTTP API that admits DNN inference requests at runtime,
// extends the layer schedule incrementally, and reports per-request
// latency/SLA statistics plus aggregate throughput.
//
// Examples:
//
//	go run ./cmd/heraldd -addr :8080 -class edge -bootstrap arvr-a
//	go run ./cmd/heraldd -class mobile -styles nvdla,shi-diannao \
//	    -pe-units 8 -bw-units 4 -objective latency
//	go run ./cmd/heraldd -class edge -partition "nvdla:512:8,shi-diannao:512:8"
//
// API (see internal/serve):
//
//	POST /v1/requests      {"tenant":"arvr","model":"unet","wait":true}
//	GET  /v1/requests/{id}
//	GET  /v1/stats
//	GET  /v1/schedule
//	POST /v1/drain
//	GET  /v1/models | /v1/hda | /v1/healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	herald "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	className := flag.String("class", "edge", "accelerator class: edge, mobile, cloud")
	stylesFlag := flag.String("styles", "nvdla,shi-diannao", "comma-separated sub-accelerator dataflow styles")
	peUnits := flag.Int("pe-units", 8, "bootstrap DSE PE partitioning granularity")
	bwUnits := flag.Int("bw-units", 4, "bootstrap DSE bandwidth partitioning granularity")
	strategyFlag := flag.String("strategy", "exhaustive", "bootstrap search strategy: exhaustive, binary, random")
	objectiveFlag := flag.String("objective", "edp", "bootstrap search objective: edp, latency, energy")
	bootstrap := flag.String("bootstrap", "arvr-a", "bootstrap workload the DSE optimizes the HDA for: arvr-a, arvr-b, mlperf")
	partitionFlag := flag.String("partition", "", "skip the DSE; serve on this fixed partition (style:pes:bw,...)")
	clockGHz := flag.Float64("clock-ghz", 1.0, "accelerator clock for cycle<->seconds stats")
	maxQueue := flag.Int("max-queue", 1024, "per-tenant pending-queue capacity")
	maxBatch := flag.Int("max-batch", 8, "max admissions coalesced per scheduling round")
	flag.Parse()

	class, err := herald.ParseClass(*className)
	if err != nil {
		log.Fatal(err)
	}
	cache := herald.NewCostCache(herald.DefaultEnergyTable())

	var hda *herald.HDA
	if *partitionFlag != "" {
		parts, err := parsePartition(*partitionFlag)
		if err != nil {
			log.Fatal(err)
		}
		if hda, err = herald.NewHDA("heraldd", class, parts); err != nil {
			log.Fatal(err)
		}
		log.Printf("serving on fixed partition %v", hda)
	} else {
		hda, err = bootstrapHDA(cache, class, *stylesFlag, *peUnits, *bwUnits, *strategyFlag, *objectiveFlag, *bootstrap)
		if err != nil {
			log.Fatal(err)
		}
	}

	opts := herald.DefaultServingOptions()
	opts.ClockGHz = *clockGHz
	opts.MaxQueue = *maxQueue
	opts.MaxBatch = *maxBatch
	engine, err := herald.NewServingEngine(cache, hda, opts)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("heraldd listening on %s (HDA %v, clock %g GHz)", *addr, hda, *clockGHz)
	log.Fatal(http.ListenAndServe(*addr, engine.Handler()))
}

// bootstrapHDA runs the deploy-time DSE: search the partition space
// for the bootstrap workload and fix the best point as the serving
// substrate.
func bootstrapHDA(cache *herald.CostCache, class herald.Class, stylesCSV string, peUnits, bwUnits int, strategy, objective, bootstrap string) (*herald.HDA, error) {
	var styles []herald.Style
	for _, s := range strings.Split(stylesCSV, ",") {
		st, err := herald.ParseStyle(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		styles = append(styles, st)
	}
	w, err := bootstrapWorkload(bootstrap)
	if err != nil {
		return nil, err
	}
	opts := herald.DefaultSearchOptions()
	switch strategy {
	case "exhaustive":
		opts.Strategy = herald.Exhaustive
	case "binary":
		opts.Strategy = herald.Binary
	case "random":
		opts.Strategy = herald.Random
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
	switch objective {
	case "edp":
		opts.Objective = herald.ObjectiveEDP
	case "latency":
		opts.Objective = herald.ObjectiveLatency
	case "energy":
		opts.Objective = herald.ObjectiveEnergy
	default:
		return nil, fmt.Errorf("unknown objective %q", objective)
	}
	sp := herald.SearchSpace{Class: class, Styles: styles, PEUnits: peUnits, BWUnits: bwUnits}
	res, err := herald.Search(cache, sp, w, opts)
	if err != nil {
		return nil, fmt.Errorf("bootstrap DSE: %w", err)
	}
	log.Printf("bootstrap DSE: %d points on %s, best (%s) %v",
		len(res.Points), w.Name, objective, res.Best.HDA)
	return res.Best.HDA, nil
}

func bootstrapWorkload(name string) (*herald.Workload, error) {
	switch strings.ToLower(name) {
	case "arvr-a", "arvra":
		return herald.ARVRA(), nil
	case "arvr-b", "arvrb":
		return herald.ARVRB(), nil
	case "mlperf":
		return herald.MLPerf(1), nil
	}
	return nil, fmt.Errorf("unknown bootstrap workload %q (want arvr-a, arvr-b, mlperf)", name)
}

func parsePartition(s string) ([]herald.Partition, error) {
	var parts []herald.Partition
	for _, item := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(item), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("partition %q: want style:pes:bw", item)
		}
		st, err := herald.ParseStyle(fields[0])
		if err != nil {
			return nil, err
		}
		pes, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("partition %q: bad PEs: %v", item, err)
		}
		bw, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("partition %q: bad bandwidth: %v", item, err)
		}
		parts = append(parts, herald.Partition{Style: st, PEs: pes, BWGBps: bw})
	}
	return parts, nil
}
