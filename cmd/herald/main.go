// Command herald runs the Herald co-design space exploration for one
// workload and accelerator class, printing the optimized HDA
// partitioning, the Pareto front of the explored cloud, and the
// expected latency/energy — the tool's design-time mode (Fig. 10). Use
// -schedule-only with an explicit -partition to run the compile-time
// mode on a fixed HDA.
//
// Examples:
//
//	go run ./cmd/herald -workload arvr-a -class edge
//	go run ./cmd/herald -workload mlperf -class cloud -styles nvdla,shi-diannao,eyeriss
//	go run ./cmd/herald -workload arvr-b -class mobile \
//	    -schedule-only -partition "nvdla:1024:32,shi-diannao:3072:32"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	herald "repro"
	"repro/internal/config"
)

func main() {
	workloadName := flag.String("workload", "arvr-a", "workload: arvr-a, arvr-b, mlperf, mlperf8, or <model>:<batches>")
	className := flag.String("class", "edge", "accelerator class: edge, mobile, cloud")
	stylesFlag := flag.String("styles", "nvdla,shi-diannao", "comma-separated sub-accelerator dataflow styles")
	peUnits := flag.Int("pe-units", 16, "PE partitioning granularity (units)")
	bwUnits := flag.Int("bw-units", 8, "bandwidth partitioning granularity (units)")
	strategyFlag := flag.String("strategy", "exhaustive", "search strategy: exhaustive, binary, random")
	scheduleOnly := flag.Bool("schedule-only", false, "skip DSE; schedule on the -partition HDA")
	partitionFlag := flag.String("partition", "", "fixed partition for -schedule-only: style:pes:bw,style:pes:bw,...")
	configPath := flag.String("config", "", "JSON scenario file (overrides -workload/-class/-partition)")
	ganttFlag := flag.Bool("gantt", false, "render the schedule as a text Gantt chart")
	csvOut := flag.String("csv-out", "", "write the schedule's assignments as CSV to this file")
	jsonOut := flag.String("json-out", "", "write the schedule as JSON to this file")
	flag.Parse()

	var w *herald.Workload
	var class herald.Class
	var fixedHDA *herald.HDA
	var err error

	if *configPath != "" {
		doc, err := config.Load(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		if w, err = doc.BuildWorkload(); err != nil {
			log.Fatal(err)
		}
		if class, err = doc.BuildClass(); err != nil {
			log.Fatal(err)
		}
		if len(doc.Partitions) > 0 {
			if fixedHDA, err = doc.BuildHDA("config"); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		if w, err = parseWorkload(*workloadName); err != nil {
			log.Fatal(err)
		}
		if class, err = herald.ParseClass(*className); err != nil {
			log.Fatal(err)
		}
		if *scheduleOnly {
			if *partitionFlag == "" {
				log.Fatal("-schedule-only requires -partition (or -config)")
			}
			parts, err := parsePartition(*partitionFlag)
			if err != nil {
				log.Fatal(err)
			}
			if fixedHDA, err = herald.NewHDA("cli", class, parts); err != nil {
				log.Fatal(err)
			}
		}
	}
	h := herald.NewFramework()

	if fixedHDA != nil {
		sch, err := h.Compile(fixedHDA, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("HDA:        %v\n", fixedHDA)
		fmt.Printf("workload:   %s (%d layers)\n", w.Name, w.TotalLayers())
		fmt.Printf("latency:    %.4f s\n", sch.LatencySeconds(1.0))
		fmt.Printf("energy:     %.1f mJ\n", sch.EnergyMJ())
		fmt.Printf("EDP:        %.4g J*s\n", sch.EDP(1.0))
		for i, u := range sch.Utilization() {
			fmt.Printf("sub-acc %d:  %s, busy %.1f%%\n", i+1, fixedHDA.Subs[i].Name, 100*u)
		}
		fmt.Printf("sched time: %v\n", sch.SchedulingTime)
		exportSchedule(sch, *ganttFlag, *csvOut, *jsonOut)
		return
	}

	var styles []herald.Style
	for _, s := range strings.Split(*stylesFlag, ",") {
		st, err := herald.ParseStyle(strings.TrimSpace(s))
		if err != nil {
			log.Fatal(err)
		}
		styles = append(styles, st)
	}
	var strategy herald.SearchStrategy
	switch *strategyFlag {
	case "exhaustive":
		strategy = herald.Exhaustive
	case "binary":
		strategy = herald.Binary
	case "random":
		strategy = herald.Random
	default:
		log.Fatalf("unknown strategy %q", *strategyFlag)
	}

	design, err := h.CoDesign(class, styles, w, *peUnits, *bwUnits, strategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload:      %s (%d layers, %.1f GMACs)\n",
		w.Name, w.TotalLayers(), float64(w.TotalMACs())/1e9)
	fmt.Printf("class:         %s (%d PEs, %g GB/s, %d MiB)\n",
		class.Name, class.PEs, class.BWGBps, class.GlobalBufBytes>>20)
	fmt.Printf("explored:      %d design points\n", design.Explored)
	fmt.Printf("optimized HDA: %v\n", design.HDA)
	fmt.Printf("latency:       %.4f s\n", design.LatencySec)
	fmt.Printf("energy:        %.1f mJ\n", design.EnergyMJ)
	fmt.Printf("EDP:           %.4g J*s\n", design.EDP)
	fmt.Println("Pareto front (latency s, energy mJ, partition):")
	for _, p := range design.Pareto {
		fmt.Printf("  %.4f  %8.1f  %v\n", p.LatencySec, p.EnergyMJ, p.HDA)
	}
	exportSchedule(design.Schedule, *ganttFlag, *csvOut, *jsonOut)
}

// exportSchedule handles the -gantt/-csv-out/-json-out outputs.
func exportSchedule(sch *herald.Schedule, gantt bool, csvPath, jsonPath string) {
	if gantt {
		fmt.Println()
		fmt.Print(herald.Gantt(sch, 100))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := herald.WriteScheduleCSV(f, sch); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := herald.WriteScheduleJSON(f, sch); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

func parseWorkload(name string) (*herald.Workload, error) {
	switch strings.ToLower(name) {
	case "arvr-a", "arvra":
		return herald.ARVRA(), nil
	case "arvr-b", "arvrb":
		return herald.ARVRB(), nil
	case "mlperf":
		return herald.MLPerf(1), nil
	case "mlperf8":
		return herald.MLPerf(8), nil
	}
	if model, batches, ok := strings.Cut(name, ":"); ok {
		b, err := strconv.Atoi(batches)
		if err != nil {
			return nil, fmt.Errorf("bad batch count in %q: %v", name, err)
		}
		return herald.SingleDNN(model, b)
	}
	return herald.SingleDNN(name, 1)
}

func parsePartition(s string) ([]herald.Partition, error) {
	var parts []herald.Partition
	for _, item := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(item), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("partition %q: want style:pes:bw", item)
		}
		st, err := herald.ParseStyle(fields[0])
		if err != nil {
			return nil, err
		}
		pes, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("partition %q: bad PEs: %v", item, err)
		}
		bw, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("partition %q: bad bandwidth: %v", item, err)
		}
		parts = append(parts, herald.Partition{Style: st, PEs: pes, BWGBps: bw})
	}
	return parts, nil
}
