package main

import (
	"testing"

	herald "repro"
)

func TestParseWorkload(t *testing.T) {
	cases := map[string]int{ // name -> expected instances
		"arvr-a":         10,
		"ARVR-B":         12,
		"mlperf":         5,
		"mlperf8":        40,
		"unet:3":         3,
		"resnet50":       1,
		"mobilenetv1:16": 16,
	}
	for name, want := range cases {
		w, err := parseWorkload(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.NumInstances() != want {
			t.Errorf("%s: %d instances, want %d", name, w.NumInstances(), want)
		}
	}
	for _, bad := range []string{"vgg99", "unet:x", "unet:0"} {
		if _, err := parseWorkload(bad); err == nil {
			t.Errorf("%s: accepted", bad)
		}
	}
}

func TestParsePartition(t *testing.T) {
	parts, err := parsePartition("nvdla:128:4, shi-diannao:896:12")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || parts[0].PEs != 128 || parts[1].BWGBps != 12 {
		t.Errorf("parts = %+v", parts)
	}
	if parts[0].Style != herald.NVDLA || parts[1].Style != herald.ShiDiannao {
		t.Error("styles wrong")
	}
	for _, bad := range []string{"nvdla:128", "tpu:128:4", "nvdla:x:4", "nvdla:128:y"} {
		if _, err := parsePartition(bad); err == nil {
			t.Errorf("%q: accepted", bad)
		}
	}
}
