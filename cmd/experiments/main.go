// Command experiments regenerates every table and figure of the
// paper's evaluation section and prints them with the paper's reported
// values side by side. Run with -quick for coarse DSE granularity.
//
//	go run ./cmd/experiments            # full granularity (~ a minute)
//	go run ./cmd/experiments -quick     # coarse granularity (seconds)
//	go run ./cmd/experiments -only fig11,table5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "coarse DSE granularity (faster, less optimal designs)")
	only := flag.String("only", "", "comma-separated subset: table1,fig2,fig5,fig6,table2,table4,fig11,table5,fig12,table6,fig13,table7,ablation,headline,ablations,preference")
	fig11CSV := flag.String("fig11-csv", "", "also export the Figure 11 design points as CSV to this file")
	flag.Parse()

	cfg := experiments.New()
	if *quick {
		cfg = experiments.NewQuick()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	type step struct {
		key string
		run func() (fmt.Stringer, error)
	}
	steps := []step{
		{"table1", func() (fmt.Stringer, error) { return experiments.TableI() }},
		{"table2", func() (fmt.Stringer, error) { return str(experiments.TableII()), nil }},
		{"table4", func() (fmt.Stringer, error) { return str(experiments.TableIV()), nil }},
		{"fig2", func() (fmt.Stringer, error) { return cfg.Figure2() }},
		{"fig5", func() (fmt.Stringer, error) { return cfg.Figure5() }},
		{"fig6", func() (fmt.Stringer, error) { return cfg.Figure6() }},
		{"fig11", func() (fmt.Stringer, error) {
			r, err := cfg.Figure11()
			if err != nil {
				return nil, err
			}
			if *fig11CSV != "" {
				f, err := os.Create(*fig11CSV)
				if err != nil {
					return nil, err
				}
				if err := experiments.WriteFigure11CSV(f, r); err != nil {
					f.Close()
					return nil, err
				}
				if err := f.Close(); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "[fig11 CSV written to %s]\n", *fig11CSV)
			}
			return r, nil
		}},
		{"table5", func() (fmt.Stringer, error) { return cfg.TableV() }},
		{"fig12", func() (fmt.Stringer, error) { return cfg.Figure12() }},
		{"table6", func() (fmt.Stringer, error) { return cfg.TableVI() }},
		{"fig13", func() (fmt.Stringer, error) { return cfg.Figure13() }},
		{"table7", func() (fmt.Stringer, error) { return cfg.TableVII() }},
		{"ablation", func() (fmt.Stringer, error) { return cfg.SchedulerAblation() }},
		{"headline", func() (fmt.Stringer, error) { return cfg.Headline() }},
		{"ablations", func() (fmt.Stringer, error) {
			rep, err := cfg.AblationsReport()
			return str(rep), err
		}},
		{"preference", func() (fmt.Stringer, error) {
			rep, err := cfg.PreferenceReportString()
			return str(rep), err
		}},
	}

	start := time.Now()
	for _, s := range steps {
		if !selected(s.key) {
			continue
		}
		t0 := time.Now()
		r, err := s.run()
		if err != nil {
			log.Fatalf("%s: %v", s.key, err)
		}
		fmt.Println(r.String())
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", s.key, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "[all experiments in %v]\n", time.Since(start).Round(time.Millisecond))
}

// str adapts a plain string to fmt.Stringer.
type str string

func (s str) String() string { return string(s) }
