// Command benchgate is the CI perf-regression gate: it compares two
// benchjson outputs (see cmd/benchjson) and fails when any benchmark
// matched by -match regressed in ns/op by more than -max-pct percent.
//
// Usage:
//
//	go run ./cmd/benchgate -old BENCH_PR3.json -new BENCH_PR4.json \
//	    -match 'BenchmarkDSE|BenchmarkFigure|BenchmarkResweep' -max-pct 25
//
// Benchmarks present only in the new file are reported but never fail
// the gate (they have no baseline); benchmarks that disappeared fail
// it (a silently-deleted benchmark would otherwise retire its own
// regression gate). The committed baselines are single-iteration runs
// (`make bench`), so the threshold is generous by design: the gate is
// meant to catch order-of-magnitude slips and accidental algorithmic
// regressions, not nanosecond drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Entry mirrors cmd/benchjson's output schema.
type Entry struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func load(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Entry)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return out, nil
}

// gate compares the matched benchmarks and returns human-readable
// report lines plus the failures.
func gate(old, new map[string]Entry, match *regexp.Regexp, maxPct float64) (report, failures []string) {
	names := make([]string, 0, len(new))
	for name := range new {
		if match.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		n := new[name]
		o, ok := old[name]
		if !ok {
			report = append(report, fmt.Sprintf("%-36s %12.0f ns/op  (new benchmark, no baseline)", name, n.NsPerOp))
			continue
		}
		pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		line := fmt.Sprintf("%-36s %12.0f -> %12.0f ns/op  (%+.1f%%)", name, o.NsPerOp, n.NsPerOp, pct)
		report = append(report, line)
		if pct > maxPct {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (> %.0f%% allowed)", name, pct, maxPct))
		}
	}
	for name := range old {
		if match.MatchString(name) {
			if _, ok := new[name]; !ok {
				failures = append(failures, fmt.Sprintf("%s present in baseline but missing from new results", name))
			}
		}
	}
	sort.Strings(failures)
	return report, failures
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson file")
	newPath := flag.String("new", "", "candidate benchjson file")
	matchExpr := flag.String("match", "BenchmarkDSE|BenchmarkFigure6|BenchmarkFigure11|BenchmarkFigure13|BenchmarkResweep", "regexp of benchmarks to gate (sweep-scale ones; microsecond artifacts are too noisy at -benchtime 1x)")
	maxPct := flag.Float64("max-pct", 25, "maximum allowed ns/op regression in percent")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	match, err := regexp.Compile(*matchExpr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	old, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	report, failures := gate(old, cur, match, *maxPct)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK (%d benchmarks within %.0f%%)\n", len(report), *maxPct)
}
