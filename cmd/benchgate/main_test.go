package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestGate(t *testing.T) {
	old := map[string]Entry{
		"BenchmarkDSE":      {NsPerOp: 1000},
		"BenchmarkFigure11": {NsPerOp: 2000},
		"BenchmarkOther":    {NsPerOp: 10},
	}
	match := regexp.MustCompile(`BenchmarkDSE|BenchmarkFigure`)

	// Improvement and small regression pass.
	cur := map[string]Entry{
		"BenchmarkDSE":      {NsPerOp: 500},
		"BenchmarkFigure11": {NsPerOp: 2400}, // +20%
		"BenchmarkOther":    {NsPerOp: 9999}, // unmatched: ignored
	}
	report, failures := gate(old, cur, match, 25)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(report) != 2 {
		t.Fatalf("report covers %d benchmarks, want 2: %v", len(report), report)
	}

	// A regression beyond the threshold fails.
	cur["BenchmarkFigure11"] = Entry{NsPerOp: 2600} // +30%
	_, failures = gate(old, cur, match, 25)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkFigure11") {
		t.Fatalf("regression not caught: %v", failures)
	}

	// A new benchmark without a baseline is reported, never failed.
	cur["BenchmarkFigure11"] = Entry{NsPerOp: 2000}
	cur["BenchmarkDSEPruned"] = Entry{NsPerOp: 123}
	report, failures = gate(old, cur, match, 25)
	if len(failures) != 0 {
		t.Fatalf("new benchmark failed the gate: %v", failures)
	}
	found := false
	for _, line := range report {
		if strings.Contains(line, "BenchmarkDSEPruned") && strings.Contains(line, "no baseline") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new benchmark not reported: %v", report)
	}

	// A deleted benchmark fails the gate.
	delete(cur, "BenchmarkDSE")
	_, failures = gate(old, cur, match, 25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("deleted benchmark not caught: %v", failures)
	}
}
