// Command heraldvet runs the repo's invariant analyzers
// (internal/analysis) over module packages and fails on findings —
// the mechanical enforcement of the determinism, lock-discipline and
// JSON-zero-value contracts every perf and replay claim rests on.
//
// Usage:
//
//	go run ./cmd/heraldvet ./...
//	go run ./cmd/heraldvet -analyzers detmap,wallclock ./internal/fleet
//
// Each analyzer is applied only to the packages its invariant scopes
// to: detmap and wallclock to the determinism-critical packages
// (internal/sched, internal/dse, internal/fleet, internal/serve),
// jsonzero to the JSON-surface packages (internal/serve,
// internal/fleet, internal/dse), and lockguard to every package that
// documents guarded fields. Findings print as file:line:col with the
// analyzer name; the exit status is 1 when any finding is reported, 2
// on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	analysis.Detmap,
	analysis.Wallclock,
	analysis.Lockguard,
	analysis.Jsonzero,
}

// deterministicPkgs lists the package-path suffixes whose scheduling
// and dispatch decisions must replay bit-identically.
var deterministicPkgs = []string{
	"internal/sched", "internal/dse", "internal/fleet", "internal/serve",
	"internal/capture", "internal/scenario", "internal/replay", "cmd/heraldplay",
}

// jsonPkgs lists the package-path suffixes exposing exported JSON
// contracts.
var jsonPkgs = []string{
	"internal/serve", "internal/fleet", "internal/dse",
	"internal/capture", "internal/scenario", "internal/replay",
}

// scopes maps each analyzer to the package suffixes it applies to;
// nil means every loaded package.
var scopes = map[string][]string{
	"detmap":    deterministicPkgs,
	"wallclock": deterministicPkgs,
	"lockguard": nil,
	"jsonzero":  jsonPkgs,
}

func main() {
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: heraldvet [-analyzers a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heraldvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "heraldvet:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heraldvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heraldvet:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	var fsetPkg *analysis.Package
	for _, pkg := range pkgs {
		fsetPkg = pkg
		for _, a := range selected {
			if !inScope(a.Name, pkg.Path) {
				continue
			}
			pass := analysis.NewPass(a, pkg, func(d analysis.Diagnostic) { diags = append(diags, d) })
			a.Run(pass)
		}
	}
	if len(diags) == 0 {
		return
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fsetPkg.Fset.Position(diags[i].Pos), fsetPkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := fsetPkg.Fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	fmt.Fprintf(os.Stderr, "heraldvet: %d finding(s)\n", len(diags))
	os.Exit(1)
}

// selectAnalyzers resolves the -analyzers flag to suite entries.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// inScope reports whether the analyzer applies to the package path.
func inScope(analyzer, pkgPath string) bool {
	suffixes := scopes[analyzer]
	if suffixes == nil {
		return true
	}
	for _, s := range suffixes {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// moduleRoot walks up from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
