package herald

// End-to-end acceptance of layer-fused segment serving: on a
// dataflow-specialized fleet, fused segment chains must beat unfused
// whole-request dispatch on burst makespan (the improvement
// BenchmarkFusedServing gates).

import (
	"context"
	"testing"
)

// fusedFleetSetup builds the fused-vs-unfused comparison fixture: a
// two-dataflow planning HDA for the segment cuts and a fleet of one
// FDA per dataflow (the same silicon split by style, where a whole
// request must pick one dataflow but segments need not).
func fusedFleetSetup(tb testing.TB, cache *CostCache) ([]*HDA, map[string]SegmentPlan) {
	tb.Helper()
	planHDA, err := NewHDA("fused-plan", Edge, []Partition{
		{Style: NVDLA, PEs: 512, BWGBps: 8},
		{Style: ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		tb.Fatal(err)
	}
	plans := make(map[string]SegmentPlan)
	for _, name := range []string{"mobilenetv2", "mobilenetv1"} {
		m, err := ModelByName(name)
		if err != nil {
			tb.Fatal(err)
		}
		p, err := PlanSegments(cache, planHDA, m, ObjectiveEDP, 4)
		if err != nil {
			tb.Fatal(err)
		}
		if p.NumSegments() < 2 {
			tb.Fatalf("%s does not split on the planning HDA", name)
		}
		plans[name] = p
	}
	nvdla, err := NewFDA(Edge, NVDLA)
	if err != nil {
		tb.Fatal(err)
	}
	shi, err := NewFDA(Edge, ShiDiannao)
	if err != nil {
		tb.Fatal(err)
	}
	return []*HDA{nvdla, shi}, plans
}

// driveFusedBurst submits pairs of render/track requests arriving at
// cycle 0, waits for every merged completion, drains, and returns the
// burst makespan (latest committed cycle across replicas) with the
// final fleet stats.
func driveFusedBurst(tb testing.TB, cache *CostCache, hdas []*HDA, plans map[string]SegmentPlan, pairs int) (int64, FleetStats) {
	tb.Helper()
	opts := DefaultFleetOptions()
	opts.Plans = plans
	f, err := NewFleet(cache, hdas, opts)
	if err != nil {
		tb.Fatal(err)
	}
	tickets := make([]*FleetTicket, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		for _, rm := range [][2]string{{"render", "mobilenetv2"}, {"track", "mobilenetv1"}} {
			t, err := f.Submit(InferenceRequest{Tenant: rm[0], Model: rm[1], ArrivalCycle: 0})
			if err != nil {
				tb.Fatal(err)
			}
			tickets = append(tickets, t)
		}
	}
	for _, t := range tickets {
		rec, err := t.Wait(context.Background())
		if err != nil {
			tb.Fatal(err)
		}
		if rec.Status != StatusDone {
			tb.Fatalf("request %d: %q err %q", rec.ID, rec.Status, rec.Err)
		}
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	var span int64
	for _, rs := range st.PerReplica {
		if rs.Engine.MakespanCycles > span {
			span = rs.Engine.MakespanCycles
		}
	}
	return span, st
}

// TestFusedServingImprovement pins the fused speedup the benchmark
// gate relies on: on the dataflow-specialized fleet, segment chains
// must finish the AR/VR burst at least 15% faster than whole-request
// dispatch (measured 1.2x+; the margin absorbs cost-model drift), and
// the fused counters must conserve at both granularities.
func TestFusedServingImprovement(t *testing.T) {
	cache := NewCostCache(DefaultEnergyTable())
	hdas, plans := fusedFleetSetup(t, cache)
	const pairs = 16

	unfused, _ := driveFusedBurst(t, cache, hdas, nil, pairs)
	fused, st := driveFusedBurst(t, cache, hdas, plans, pairs)

	if fused <= 0 || unfused <= 0 {
		t.Fatalf("degenerate makespans: unfused %d, fused %d", unfused, fused)
	}
	speedup := float64(unfused) / float64(fused)
	if speedup < 1.15 {
		t.Errorf("fused burst makespan %d vs unfused %d: %.3fx, want >= 1.15x", fused, unfused, speedup)
	}

	sg := st.Segments
	wantFused := int64(2 * pairs)
	if sg.FusedRequests != wantFused || sg.FusedCompleted != wantFused || sg.FusedFailed != 0 {
		t.Errorf("fused request conservation: %+v, want %d completed", sg, wantFused)
	}
	wantSegs := int64(pairs * (plans["mobilenetv2"].NumSegments() + plans["mobilenetv1"].NumSegments()))
	if sg.Segments != wantSegs || sg.SegmentsCompleted != wantSegs || sg.SegmentsFailed != 0 {
		t.Errorf("segment conservation: %+v, want %d", sg, wantSegs)
	}
}
